/**
 * @file
 * Figure 3: FastMem capacity sensitivity.
 *
 * At the L:5,B:9 operating point, the FastMem:SlowMem capacity ratio
 * sweeps 1/2 .. 1/32 under HeteroOS's on-demand placement
 * (Heap-IO-Slab-OD); bars are the slowdown relative to a FastMem:
 * SlowMem ratio of 1:1 (everything fits in FastMem).
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 3: FastMem capacity impact (L:5,B:9)");

    const double ratios[] = {0.5, 0.25, 0.125, 0.0625, 0.03125};
    const char *labels[] = {"1/2", "1/4", "1/8", "1/16", "1/32"};

    sim::Table fig("Figure 3: slowdown relative to FastMem 1:1 ratio");
    std::vector<std::string> header = {"app"};
    for (const char *l : labels)
        header.push_back(l);
    fig.header(header);

    for (workload::AppId app : workload::allApps) {
        const auto base = core::run(
            bench::paperScenario(core::Approach::FastMemOnly)
                .withApp(app));

        std::vector<std::string> row = {workload::appName(app)};
        for (double ratio : ratios) {
            auto s = bench::paperScenario(core::Approach::HeapIoSlabOd)
                         .withApp(app);
            s.fast_bytes = static_cast<std::uint64_t>(
                static_cast<double>(s.slow_bytes) * ratio);
            const auto r = core::run(s);
            row.push_back(
                sim::Table::num(core::slowdownFactor(base, r)));
        }
        fig.row(row);
    }
    fig.print();

    std::puts("Expected shape: capacity-churning apps (Graphchi,\n"
              "X-Stream) degrade gently; I/O apps stay flat until\n"
              "1/16 and below; Metis follows its 5.4 GB working set.");
    return 0;
}
