/**
 * @file
 * Simulator self-performance benchmark (host wall-clock, not
 * simulated time).
 *
 * Where every other bench reproduces a paper figure, this one
 * measures the simulator itself: how many simulated nanoseconds each
 * end-to-end scenario advances per host second. Three scenarios
 * cover the three hot regimes:
 *
 *  - coordinated: single-VM HeteroOS-coordinated run (guest/VMM
 *    coordination loop, guided scans, placement sampling);
 *  - two_vm_drf: two VMs (GraphChi + Metis) sharing a host under
 *    weighted-DRF arbitration (ballooning, overcommit churn);
 *  - full_vm_sweep: VMM-exclusive management (full-VM hotness sweeps
 *    over the guest's entire gpfn space).
 *
 * The coordinated and full-VM-sweep scenarios also run in "legacy"
 * mode — placement sampling answered by walking region pages instead
 * of the ResidencyIndex, and sweeps probing every free descriptor
 * instead of skipping runs — which is the pre-optimization ("before")
 * implementation retained as a cross-check. Simulated results are
 * bit-identical between the modes (enforced by
 * test_golden_determinism); only the host-time cost differs, and the
 * recorded before/after pair is the speedup evidence.
 *
 * Output: google-benchmark console output, plus a machine-readable
 * summary written to BENCH_selfperf.json (override the path with
 * HOS_SELFPERF_OUT). The file is not overwritten blindly: an existing
 * summary's record is appended to a `history` array before the fresh
 * numbers take the top level, so the checked-in file accumulates the
 * per-PR self-performance trajectory. Reduce iteration time for smoke
 * runs with --benchmark_min_time and HOS_BENCH_SCALE as usual.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "policy/vmm_exclusive.hh"
#include "prof/prof.hh"
#include "prof/report.hh"
#include "sim/json.hh"
#include "vmm/drf.hh"

using namespace hos;

namespace {

/** Simulated seconds advanced by the runs of one benchmark. */
void
recordSimTime(benchmark::State &state, double sim_seconds)
{
    state.counters["sim_ns_per_host_s"] = benchmark::Counter(
        sim_seconds * 1e9, benchmark::Counter::kIsRate);
    state.counters["sim_s"] = benchmark::Counter(
        sim_seconds, benchmark::Counter::kAvgIterations);
}

void
BM_Coordinated(benchmark::State &state, bool legacy)
{
    const core::Scenario s =
        bench::paperScenario(core::Approach::Coordinated)
            .withLegacySampling(legacy)
            .withName(legacy ? "selfperf-coordinated-legacy"
                             : "selfperf-coordinated");
    double sim_seconds = 0.0;
    for (auto _ : state) {
        const auto r = core::run(s);
        sim_seconds += r.seconds();
        benchmark::DoNotOptimize(r.phases);
    }
    recordSimTime(state, sim_seconds);
}

void
BM_FullVmSweep(benchmark::State &state, bool legacy)
{
    // VMM-exclusive over the paper host: the tracker sweeps the whole
    // guest gpfn space every interval. Legacy mode disables the
    // free-run skip, probing every descriptor as the pre-optimization
    // walk did; the system is assembled by hand because that knob
    // lives in the policy's HotnessConfig, not the Scenario.
    const core::Scenario s =
        bench::paperScenario(core::Approach::VmmExclusive);
    const workload::WorkloadFactory factory =
        workload::makeApp(s.app, s.scale);
    double sim_seconds = 0.0;
    for (auto _ : state) {
        core::HeteroSystem sys(s.host());
        sys.setLegacyPlacementSampling(legacy);
        vmm::HotnessConfig hotness;
        hotness.free_run_skip = !legacy;
        auto &slot = sys.addVm(
            std::make_unique<policy::VmmExclusivePolicy>(hotness),
            s.sizing());
        const auto r = sys.runOne(slot, factory);
        sim_seconds += r.seconds();
        benchmark::DoNotOptimize(r.phases);
    }
    recordSimTime(state, sim_seconds);
}

void
BM_TwoVmDrf(benchmark::State &state, bool legacy)
{
    // Two coordinated VMs overcommitting a shared host under
    // weighted DRF — the heaviest steady-state configuration: two
    // kernels, ballooning, and cross-VM arbitration. Legacy mode
    // routes balloon grows through the pre-SoA take/return protocol
    // (a gpfn vector materialized per hypercall) instead of the
    // lazy-reversal peek/commit stack.
    const double scale = bench::benchScale();
    double sim_seconds = 0.0;
    for (auto _ : state) {
        core::HostConfig host;
        host.fast = mem::dramSpec(bench::scaledBytes(4 * mem::gib));
        host.slow =
            mem::defaultSlowMemSpec(bench::scaledBytes(8 * mem::gib));
        core::HeteroSystem sys(host);
        sys.setLegacyBalloonPath(legacy);
        sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());

        core::GuestSizing g;
        g.name = "graphchi-vm";
        g.fast_max = bench::scaledBytes(4 * mem::gib);
        g.fast_initial = bench::scaledBytes(1 * mem::gib);
        g.slow_max = bench::scaledBytes(8 * mem::gib);
        g.slow_initial = bench::scaledBytes(4 * mem::gib);

        core::GuestSizing m = g;
        m.name = "metis-vm";
        m.fast_initial = bench::scaledBytes(3 * mem::gib);
        m.seed = 7;

        auto &g_slot = sys.addVm(
            core::makePolicy(core::Approach::Coordinated), g);
        auto &m_slot = sys.addVm(
            core::makePolicy(core::Approach::Coordinated), m);
        const auto results = sys.runMany(
            {{&g_slot, workload::makeGraphchiTwitter(scale)},
             {&m_slot, workload::makeMetisLarge(scale)}});
        for (const auto &r : results)
            sim_seconds += r.seconds();
        benchmark::DoNotOptimize(results.size());
    }
    recordSimTime(state, sim_seconds);
}

/**
 * Console reporter that also captures per-benchmark wall time so the
 * exit hook can write BENCH_selfperf.json, including the before/after
 * (legacy vs optimized) speedups.
 */
class SelfperfReporter final : public benchmark::ConsoleReporter
{
  public:
    struct Run
    {
        double real_s = 0.0; ///< host seconds per iteration
        double sim_ns_per_host_s = 0.0;
    };

    void
    ReportRuns(const std::vector<benchmark::BenchmarkReporter::Run>
                   &report) override
    {
        for (const auto &r : report) {
            if (r.error_occurred)
                continue;
            Run run;
            const double iters =
                r.iterations > 0 ? static_cast<double>(r.iterations)
                                 : 1.0;
            run.real_s = r.real_accumulated_time / iters;
            auto it = r.counters.find("sim_ns_per_host_s");
            if (it != r.counters.end())
                run.sim_ns_per_host_s = it->second.value;
            runs_[r.benchmark_name()] = run;
        }
        benchmark::ConsoleReporter::ReportRuns(report);
    }

    const std::map<std::string, Run> &runs() const { return runs_; }

  private:
    std::map<std::string, Run> runs_;
};

/**
 * Re-emit a parsed JSON node verbatim — history records are carried
 * forward untouched, whatever fields past PRs recorded. Integer
 * lexemes re-render through the exact source text (doubles would
 * corrupt 64-bit counts); nulls never occur in selfperf summaries.
 */
void
emitValue(sim::JsonWriter &w, const sim::JsonValue &v)
{
    using Kind = sim::JsonValue::Kind;
    switch (v.kind) {
    case Kind::Null:
        w.value("null");
        break;
    case Kind::Bool:
        w.value(v.boolean);
        break;
    case Kind::Number:
        if (v.number_text.find_first_of(".eE") == std::string::npos) {
            if (!v.number_text.empty() && v.number_text[0] == '-')
                w.value(static_cast<std::int64_t>(v.asDouble()));
            else
                w.value(v.asU64());
        } else {
            w.value(v.asDouble());
        }
        break;
    case Kind::String:
        w.value(v.string);
        break;
    case Kind::Array:
        w.beginArray();
        for (const auto &e : v.array)
            emitValue(w, e);
        w.endArray();
        break;
    case Kind::Object:
        w.beginObject();
        for (const auto &[k, e] : v.object) {
            w.key(k);
            emitValue(w, e);
        }
        w.endObject();
        break;
    }
}

/**
 * The prior summary at `path`, split into the records to carry into
 * the new file's `history`: first the old file's own history entries
 * (schema 2), then its top-level record (everything but "schema" and
 * "history" — a schema-1 file contributes its whole body). Missing or
 * malformed files yield an empty history.
 */
std::vector<sim::JsonValue>
priorHistory(const char *path)
{
    std::vector<sim::JsonValue> history;
    const auto prior = sim::jsonParseFile(path);
    if (!prior || !prior->isObject())
        return history;
    if (const auto *h = prior->find("history"); h && h->isArray())
        history = h->array;
    sim::JsonValue latest;
    latest.kind = sim::JsonValue::Kind::Object;
    for (const auto &[k, v] : prior->object) {
        if (k == "schema" || k == "history")
            continue;
        latest.object.emplace_back(k, v);
    }
    if (!latest.object.empty())
        history.push_back(std::move(latest));
    return history;
}

void
writeJson(const SelfperfReporter &rep, const char *path)
{
    const std::vector<sim::JsonValue> history = priorHistory(path);
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "selfperf: cannot write %s\n", path);
        return;
    }
    sim::JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "hos-selfperf-2");
    w.key("runs");
    w.beginObject();
    for (const auto &[name, run] : rep.runs()) {
        w.key(name);
        w.beginObject();
        w.kv("real_time_s", run.real_s);
        w.kv("sim_ns_per_host_s", run.sim_ns_per_host_s);
        w.endObject();
    }
    w.endObject();

    // Before/after pairs: <name>/legacy is the pre-optimization
    // implementation (retained in-tree as a cross-check), <name> the
    // optimized one. Speedup is legacy wall time over optimized wall
    // time for the same simulated work.
    w.key("speedups");
    w.beginObject();
    const auto &runs = rep.runs();
    for (const auto &[name, run] : runs) {
        const auto it = runs.find(name + "/legacy");
        if (it == runs.end() || run.real_s <= 0.0)
            continue;
        w.key(name);
        w.beginObject();
        w.kv("before_real_time_s", it->second.real_s);
        w.kv("after_real_time_s", run.real_s);
        w.kv("speedup", it->second.real_s / run.real_s);
        w.endObject();
    }
    w.endObject();

    // Oldest first; the record that was this file's top level last
    // run is the final entry.
    w.key("history");
    w.beginArray();
    for (const auto &record : history)
        emitValue(w, record);
    w.endArray();
    w.endObject();
    os << "\n";
    std::printf("selfperf: wrote %s (history of %zu)\n", path,
                history.size());
}

/**
 * One extra profiled run per bench scenario, after the timed
 * iterations (spans cost a little host time, so they stay out of the
 * measured loops). The ledgers answer "where does each regime spend
 * its simulated time" next to the wall-clock numbers.
 */
void
writeProfileJson(const char *path)
{
    if (!prof::profilingCompiled) {
        std::fprintf(stderr,
                     "selfperf: HOS_PROF=off, skipping %s\n", path);
        return;
    }

    std::vector<std::pair<std::string, prof::ProfileReport>> profiles;

    {
        const core::Scenario s =
            bench::paperScenario(core::Approach::Coordinated)
                .withProfiling()
                .withName("coordinated");
        auto sys = core::systemFor(s);
        sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));
        profiles.emplace_back("coordinated", sys->profiler().report());
    }

    {
        const core::Scenario s =
            bench::paperScenario(core::Approach::VmmExclusive);
        core::HeteroSystem sys(s.host());
        sys.enableProfiling();
        vmm::HotnessConfig hotness;
        hotness.free_run_skip = true;
        auto &slot = sys.addVm(
            std::make_unique<policy::VmmExclusivePolicy>(hotness),
            s.sizing());
        sys.runOne(slot, workload::makeApp(s.app, s.scale));
        profiles.emplace_back("full_vm_sweep", sys.profiler().report());
    }

    {
        const double scale = bench::benchScale();
        core::HostConfig host;
        host.fast = mem::dramSpec(bench::scaledBytes(4 * mem::gib));
        host.slow =
            mem::defaultSlowMemSpec(bench::scaledBytes(8 * mem::gib));
        core::HeteroSystem sys(host);
        sys.enableProfiling();
        sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());

        core::GuestSizing g;
        g.name = "graphchi-vm";
        g.fast_max = bench::scaledBytes(4 * mem::gib);
        g.fast_initial = bench::scaledBytes(1 * mem::gib);
        g.slow_max = bench::scaledBytes(8 * mem::gib);
        g.slow_initial = bench::scaledBytes(4 * mem::gib);
        core::GuestSizing m = g;
        m.name = "metis-vm";
        m.fast_initial = bench::scaledBytes(3 * mem::gib);
        m.seed = 7;

        auto &g_slot = sys.addVm(
            core::makePolicy(core::Approach::Coordinated), g);
        auto &m_slot = sys.addVm(
            core::makePolicy(core::Approach::Coordinated), m);
        sys.runMany({{&g_slot, workload::makeGraphchiTwitter(scale)},
                     {&m_slot, workload::makeMetisLarge(scale)}});
        profiles.emplace_back("two_vm_drf", sys.profiler().report());
    }

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "selfperf: cannot write %s\n", path);
        return;
    }
    sim::JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "hos-selfperf-prof-1");
    w.key("scenarios");
    w.beginObject();
    for (const auto &[name, report] : profiles) {
        w.key(name);
        prof::writeProfileReport(w, report);
    }
    w.endObject();
    w.endObject();
    os << "\n";
    std::printf("selfperf: wrote %s\n", path);
}

} // namespace

BENCHMARK_CAPTURE(BM_Coordinated, , false)
    ->Name("coordinated")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Coordinated, , true)
    ->Name("coordinated/legacy")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullVmSweep, , false)
    ->Name("full_vm_sweep")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullVmSweep, , true)
    ->Name("full_vm_sweep/legacy")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TwoVmDrf, , false)
    ->Name("two_vm_drf")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TwoVmDrf, , true)
    ->Name("two_vm_drf/legacy")
    ->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    bench::banner("simulator self-performance");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    SelfperfReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    const char *out = std::getenv("HOS_SELFPERF_OUT");
    writeJson(reporter, out ? out : "BENCH_selfperf.json");
    const char *prof_out = std::getenv("HOS_SELFPERF_PROF_OUT");
    writeProfileJson(prof_out ? prof_out
                              : "BENCH_selfperf_profile.json");
    benchmark::Shutdown();
    return 0;
}
