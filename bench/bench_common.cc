#include "bench_common.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace hos::bench {

double
benchScale()
{
    if (const char *env = std::getenv("HOS_BENCH_SCALE")) {
        const double v = std::atof(env);
        if (v > 0.0 && v <= 1.0)
            return v;
    }
    return 0.3;
}

std::string
ThrottlePoint::label() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L:%g,B:%g", lat, bw);
    return buf;
}

std::vector<ThrottlePoint>
figure1Sweep()
{
    return {{2, 2}, {5, 5}, {5, 7}, {5, 9}, {5, 12}};
}

core::Scenario
paperScenario(core::Approach a)
{
    // Capacities scale with the workloads so footprint:capacity
    // ratios — which drive every placement result — match the paper
    // at any scale.
    return core::Scenario{}
        .withApproach(a)
        .withThrottle(5.0, 9.0)
        .withScale(benchScale())
        .withCapacity(scaledBytes(4 * mem::gib),
                      scaledBytes(8 * mem::gib))
        .withLlcBytes(16 * mem::mib);
}

std::uint64_t
scaledBytes(std::uint64_t bytes)
{
    const double s = benchScale();
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(bytes) * s);
    // Round up to whole MiB so tiny scales keep sane zone sizes.
    return std::max<std::uint64_t>(mem::mib,
                                   (v + mem::mib - 1) / mem::mib *
                                       mem::mib);
}

void
banner(const char *what)
{
    std::printf("HeteroOS reproduction bench — %s (scale=%.2f)\n\n", what,
                benchScale());
}

} // namespace hos::bench
