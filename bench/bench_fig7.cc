/**
 * @file
 * Figure 7: STREAM triad bandwidth at 0.5 and 1.5 GiB working sets,
 * under the same five approaches as Figure 6 (FastMem 0.5 GiB).
 */

#include "bench_common.hh"

#include "workload/stream.hh"

using namespace hos;

namespace {

workload::WorkloadFactory
streamFactory(std::uint64_t wss)
{
    return [wss](workload::VmEnv env) {
        workload::StreamBenchmark::Params p;
        p.wss_bytes = wss;
        return std::make_unique<workload::StreamBenchmark>(
            std::move(env), p);
    };
}

} // namespace

int
main()
{
    bench::banner("Figure 7: STREAM bandwidth");

    const double wss_gb[] = {0.5, 1.5};
    const core::Approach approaches[] = {
        core::Approach::SlowMemOnly, core::Approach::Random,
        core::Approach::HeapOd, core::Approach::FastMemOnly,
        core::Approach::VmmExclusive};

    sim::Table fig("Figure 7: STREAM bandwidth (GB/s)");
    std::vector<std::string> header = {"WSS(GB)"};
    for (auto a : approaches)
        header.push_back(core::approachName(a));
    fig.header(header);

    for (double gb : wss_gb) {
        const auto wss = bench::scaledBytes(static_cast<std::uint64_t>(
            gb * static_cast<double>(mem::gib)));
        std::vector<std::string> row = {sim::Table::num(gb, 1)};
        for (auto a : approaches) {
            const auto s = bench::paperScenario(a).withCapacity(
                bench::scaledBytes(512 * mem::mib),
                bench::scaledBytes(3584ull * mem::mib));
            const auto r = core::run(s, streamFactory(wss));
            row.push_back(sim::Table::num(r.metric, 2));
        }
        fig.row(row);
    }
    fig.print();

    std::puts("Expected shape: Heap-OD matches FastMem-only at 0.5 GiB\n"
              "and degrades toward SlowMem-only at 1.5 GiB; Random and\n"
              "VMM-exclusive sit in between.");
    return 0;
}
