/**
 * @file
 * Ablation: batched hotness scanning (Section 4.1).
 *
 * Sweeps the scan batch size with the interval fixed, showing the
 * cost/coverage trade-off: bigger batches find hot pages sooner but
 * charge more per scan (the TLB flush amortizes, the per-PTE work
 * doesn't).
 */

#include "bench_common.hh"

#include "policy/vmm_exclusive.hh"

using namespace hos;

int
main()
{
    bench::banner("ablation: hotness-scan batch size");

    sim::Table t("Graphchi under VMM-exclusive, 100 ms interval");
    t.header({"pages/scan", "runtime(s)", "hotscan overhead(s)",
              "pages migrated (M)"});

    for (std::uint64_t batch : {std::uint64_t(8192),
                                std::uint64_t(16384),
                                std::uint64_t(32768),
                                std::uint64_t(65536)}) {
        core::HostConfig host;
        host.fast = mem::dramSpec(bench::scaledBytes(1 * mem::gib));
        host.slow = mem::defaultSlowMemSpec(bench::scaledBytes(8 * mem::gib));
        core::HeteroSystem sys(host);

        vmm::HotnessConfig hot;
        hot.interval = sim::milliseconds(100);
        hot.pages_per_scan = batch;
        auto policy = std::make_unique<policy::VmmExclusivePolicy>(hot);
        auto *raw = policy.get();
        auto &slot = sys.addVm(std::move(policy), core::GuestSizing{});

        const auto r = sys.runOne(
            slot, workload::makeApp(workload::AppId::GraphChi,
                                    bench::benchScale()));
        t.row({sim::Table::num(batch), sim::Table::num(r.seconds()),
               sim::Table::num(sim::toSeconds(slot.kernel->overheadTotal(
                   guestos::OverheadKind::HotScan))),
               sim::Table::num(
                   static_cast<double>(raw->pagesMigrated()) / 1e6, 2)});
    }
    t.print();
    return 0;
}
