/**
 * @file
 * Figure 8: VMM-exclusive hotness-tracking and migration cost.
 *
 * GraphChi runs under HeteroVisor-style management (no SlowMem
 * emulation — the point is pure software overhead) while the scan
 * interval sweeps 100..500 ms per 32K-page batch. Output: runtime
 * overhead split into hot-page-scan and migration components, plus
 * the migrated-page counts the paper prints inside the bars.
 */

#include "bench_common.hh"

#include "policy/vmm_exclusive.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 8: VMM-exclusive tracking/migration overhead");

    // Baseline: same homogeneous-speed host, no tracking at all.
    const auto base = core::run(
        bench::paperScenario(core::Approach::FastMemOnly)
            .withApp(workload::AppId::GraphChi));

    sim::Table fig("Figure 8: runtime overhead on Graphchi (both tiers "
                   "at DRAM speed; overhead is software-only)");
    fig.header({"scan interval(ms)", "hotscan(%)", "migration(%)",
                "total(%)", "pages migrated (M)"});

    for (std::uint64_t interval_ms : {100, 200, 300, 400, 500}) {
        // Both tiers run at DRAM speed: placement is performance-
        // neutral, isolating the management software cost.
        core::HostConfig host;
        host.fast = mem::dramSpec(bench::scaledBytes(4 * mem::gib));
        host.slow = mem::dramSpec(bench::scaledBytes(8 * mem::gib));
        host.slow.name = "DRAM-as-SlowMem";
        host.llc.size_bytes = 16 * mem::mib;
        core::HeteroSystem sys(host);

        vmm::HotnessConfig hot;
        hot.interval = sim::milliseconds(interval_ms);
        hot.pages_per_scan = 32768;
        auto policy =
            std::make_unique<policy::VmmExclusivePolicy>(hot);
        auto *policy_raw = policy.get();

        core::GuestSizing sizing;
        auto &slot = sys.addVm(std::move(policy), sizing);
        const auto r = sys.runOne(
            slot, workload::makeApp(workload::AppId::GraphChi,
                                    bench::benchScale()));

        auto &k = *slot.kernel;
        const double base_s = static_cast<double>(base.elapsed);
        const double scan_pct =
            100.0 *
            static_cast<double>(
                k.overheadTotal(guestos::OverheadKind::HotScan)) /
            base_s;
        const double mig_pct =
            100.0 *
            static_cast<double>(
                k.overheadTotal(guestos::OverheadKind::Migration)) /
            base_s;
        const double total_pct =
            100.0 * (static_cast<double>(r.elapsed) - base_s) / base_s;

        fig.row({sim::Table::num(interval_ms),
                 sim::Table::num(scan_pct, 1),
                 sim::Table::num(mig_pct, 1),
                 sim::Table::num(total_pct, 1),
                 sim::Table::num(
                     static_cast<double>(policy_raw->pagesMigrated()) /
                         1e6,
                     2)});
    }
    fig.print();

    std::puts("Expected shape: ~60% total at 100 ms falling toward\n"
              "~30% at 500 ms, scan cost dominating migrations.");
    return 0;
}
