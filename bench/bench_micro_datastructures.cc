/**
 * @file
 * google-benchmark microbenchmarks of the hot data structures: the
 * buddy allocator, per-CPU lists, page-table map/scan, LRU churn,
 * and the slab allocator. These guard the simulator's own
 * performance (the benches sweep thousands of runs).
 */

#include <benchmark/benchmark.h>

#include "guestos/buddy_allocator.hh"
#include "guestos/lru.hh"
#include "guestos/page.hh"
#include "guestos/page_table.hh"
#include "mem/migration_cost.hh"
#include "sim/event_queue.hh"

using namespace hos;
using namespace hos::guestos;

namespace {

void
BM_BuddyAllocFree(benchmark::State &state)
{
    PageArray pages(1 << 18);
    BuddyAllocator buddy(pages, 0, 1 << 18);
    buddy.addFreeRange(0, 1 << 18);
    std::vector<Gpfn> held;
    held.reserve(4096);
    for (auto _ : state) {
        for (int i = 0; i < 4096; ++i)
            held.push_back(buddy.alloc(0));
        for (Gpfn pfn : held)
            buddy.free(pfn, 0);
        held.clear();
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BuddyAllocFree);

void
BM_BuddyOrderMix(benchmark::State &state)
{
    PageArray pages(1 << 18);
    BuddyAllocator buddy(pages, 0, 1 << 18);
    buddy.addFreeRange(0, 1 << 18);
    for (auto _ : state) {
        std::vector<std::pair<Gpfn, unsigned>> held;
        for (unsigned o = 0; o < 8; ++o)
            held.emplace_back(buddy.alloc(o), o);
        for (auto [pfn, o] : held)
            buddy.free(pfn, o);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_BuddyOrderMix);

void
BM_PageTableMapTouch(benchmark::State &state)
{
    PageTable table;
    const std::uint64_t n = 4096;
    for (std::uint64_t i = 0; i < n; ++i)
        table.map(i * mem::pageSize, i, true);
    std::uint64_t va = 0;
    for (auto _ : state) {
        table.touch(va, va & 1);
        va = (va + mem::pageSize) % (n * mem::pageSize);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableMapTouch);

void
BM_PageTableScan(benchmark::State &state)
{
    PageTable table;
    const std::uint64_t n = 65536;
    for (std::uint64_t i = 0; i < n; ++i)
        table.map(i * mem::pageSize, i, true);
    for (auto _ : state) {
        std::uint64_t seen = 0;
        table.scanRange(0, n * mem::pageSize,
                        [&](std::uint64_t, const PteView &) { ++seen; },
                        true);
        benchmark::DoNotOptimize(seen);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PageTableScan);

void
BM_LruTouchChurn(benchmark::State &state)
{
    PageArray pages(1 << 16);
    SplitLru lru(pages);
    for (Gpfn pfn = 0; pfn < (1 << 16); ++pfn)
        lru.addPage(pfn);
    Gpfn pfn = 0;
    for (auto _ : state) {
        lru.touch(pfn);
        pfn = (pfn + 7919) & ((1 << 16) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruTouchChurn);

void
BM_MigrationCostModel(benchmark::State &state)
{
    std::uint64_t batch = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem::MigrationCostModel::batchCost(batch));
        batch = batch * 2 + 1;
        if (batch > (1 << 20))
            batch = 1;
    }
}
BENCHMARK(BM_MigrationCostModel);

void
BM_BitmapFreeRunScan(benchmark::State &state)
{
    // The SoA allocated bitmap's word-at-a-time run scan, on a
    // half-full array with alternating 64-page runs — the shape the
    // full-VM hotness sweep hops across.
    constexpr std::uint64_t n = 1 << 18;
    PageArray pages(n);
    for (Gpfn pfn = 0; pfn < n; ++pfn) {
        if ((pfn >> 6) & 1)
            pages.setAllocated(pfn, true);
    }
    for (auto _ : state) {
        std::uint64_t free_pages = 0;
        Gpfn pfn = 0;
        while (pfn < n) {
            const std::uint64_t run = pages.freeRunLength(pfn, n - pfn);
            if (run > 0) {
                free_pages += run;
                pfn += run;
            } else {
                ++pfn;
            }
        }
        benchmark::DoNotOptimize(free_pages);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BitmapFreeRunScan);

void
BM_PageRefFieldAccess(benchmark::State &state)
{
    // Field reads through the PageRef facade over the SoA columns —
    // the inner loop of every scan and audit after the migration
    // from the 80-byte struct Page.
    constexpr std::uint64_t n = 1 << 16;
    PageArray pages(n);
    for (Gpfn pfn = 0; pfn < n; ++pfn) {
        pages.setAllocated(pfn, true);
        PageRef p = pages.page(pfn);
        p.setType(PageType::Anon);
        p.setHeat(static_cast<std::uint16_t>(pfn & 0xff));
        p.setPteAccessed((pfn & 3) == 0);
    }
    for (auto _ : state) {
        std::uint64_t hot = 0, accessed = 0;
        for (Gpfn pfn = 0; pfn < n; ++pfn) {
            const PageRef p = pages.page(pfn);
            if (!p.allocated() || p.lru() != LruState::None)
                continue;
            if (p.pte_accessed())
                ++accessed;
            if (p.heat() >= 96)
                ++hot;
        }
        benchmark::DoNotOptimize(hot + accessed);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PageRefFieldAccess);

void
BM_TimerWheelScheduleDispatch(benchmark::State &state)
{
    // The event queue's steady state: a few periodic daemons
    // rescheduling themselves while the clock advances in chunks.
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t fired = 0;
        for (sim::Duration period : {250, 1000, 4096, 50000})
            q.schedulePeriodic(period, [&fired](sim::Duration p) {
                ++fired;
                return p;
            });
        for (sim::Tick t = 100000; t <= 2000000; t += 100000)
            q.runUntil(t);
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimerWheelScheduleDispatch);

} // namespace
