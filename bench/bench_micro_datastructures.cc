/**
 * @file
 * google-benchmark microbenchmarks of the hot data structures: the
 * buddy allocator, per-CPU lists, page-table map/scan, LRU churn,
 * and the slab allocator. These guard the simulator's own
 * performance (the benches sweep thousands of runs).
 */

#include <benchmark/benchmark.h>

#include "guestos/buddy_allocator.hh"
#include "guestos/lru.hh"
#include "guestos/page.hh"
#include "guestos/page_table.hh"
#include "mem/migration_cost.hh"

using namespace hos;
using namespace hos::guestos;

namespace {

void
BM_BuddyAllocFree(benchmark::State &state)
{
    PageArray pages(1 << 18);
    BuddyAllocator buddy(pages, 0, 1 << 18);
    buddy.addFreeRange(0, 1 << 18);
    std::vector<Gpfn> held;
    held.reserve(4096);
    for (auto _ : state) {
        for (int i = 0; i < 4096; ++i)
            held.push_back(buddy.alloc(0));
        for (Gpfn pfn : held)
            buddy.free(pfn, 0);
        held.clear();
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_BuddyAllocFree);

void
BM_BuddyOrderMix(benchmark::State &state)
{
    PageArray pages(1 << 18);
    BuddyAllocator buddy(pages, 0, 1 << 18);
    buddy.addFreeRange(0, 1 << 18);
    for (auto _ : state) {
        std::vector<std::pair<Gpfn, unsigned>> held;
        for (unsigned o = 0; o < 8; ++o)
            held.emplace_back(buddy.alloc(o), o);
        for (auto [pfn, o] : held)
            buddy.free(pfn, o);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_BuddyOrderMix);

void
BM_PageTableMapTouch(benchmark::State &state)
{
    PageTable table;
    const std::uint64_t n = 4096;
    for (std::uint64_t i = 0; i < n; ++i)
        table.map(i * mem::pageSize, i, true);
    std::uint64_t va = 0;
    for (auto _ : state) {
        table.touch(va, va & 1);
        va = (va + mem::pageSize) % (n * mem::pageSize);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableMapTouch);

void
BM_PageTableScan(benchmark::State &state)
{
    PageTable table;
    const std::uint64_t n = 65536;
    for (std::uint64_t i = 0; i < n; ++i)
        table.map(i * mem::pageSize, i, true);
    for (auto _ : state) {
        std::uint64_t seen = 0;
        table.scanRange(0, n * mem::pageSize,
                        [&](std::uint64_t, const PteView &) { ++seen; },
                        true);
        benchmark::DoNotOptimize(seen);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PageTableScan);

void
BM_LruTouchChurn(benchmark::State &state)
{
    PageArray pages(1 << 16);
    SplitLru lru(pages);
    for (Gpfn pfn = 0; pfn < (1 << 16); ++pfn)
        lru.addPage(pfn);
    Gpfn pfn = 0;
    for (auto _ : state) {
        lru.touch(pfn);
        pfn = (pfn + 7919) & ((1 << 16) - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruTouchChurn);

void
BM_MigrationCostModel(benchmark::State &state)
{
    std::uint64_t batch = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem::MigrationCostModel::batchCost(batch));
        batch = batch * 2 + 1;
        if (batch > (1 << 20))
            batch = 1;
    }
}
BENCHMARK(BM_MigrationCostModel);

} // namespace
