/**
 * @file
 * Figure 13: multi-VM heterogeneous memory sharing.
 *
 * Two VMs share a 4 GiB FastMem / 8 GiB SlowMem host:
 *  - a GraphChi VM (Twitter preset, 6 GB heap / 1.5 GB WSS),
 *    reservation <2*1GB FastMem, 1*4GB SlowMem>;
 *  - a Metis VM (8 GB heap / 5.4 GB WSS),
 *    reservation <2*3GB FastMem, 1*4GB SlowMem>.
 *
 * Three sharing regimes are compared — VMM-exclusive, max-min-based
 * HeteroOS-coordinated, and weighted-DRF HeteroOS-coordinated — as
 * % gain over each app's SlowMem-only run, plus the single-VM
 * coordinated runs (the paper's stars).
 */

#include "bench_common.hh"

#include "vmm/drf.hh"
#include "vmm/max_min.hh"

using namespace hos;

namespace {

enum class Sharing { VmmExclusive, MaxMinCoordinated, DrfCoordinated };

const char *
sharingName(Sharing s)
{
    switch (s) {
      case Sharing::VmmExclusive:
        return "VMM-exclusive";
      case Sharing::MaxMinCoordinated:
        return "HeteroOS-coordinated";
      case Sharing::DrfCoordinated:
        return "DRF-HeteroOS-coordinated";
    }
    return "?";
}

/** The Section 5.5 reservation contracts. */
vmm::VmConfig
graphchiContract()
{
    vmm::VmConfig cfg;
    cfg.reservations = {
        {mem::MemType::FastMem,
         mem::bytesToPages(bench::scaledBytes(1 * mem::gib)),
         mem::bytesToPages(bench::scaledBytes(4 * mem::gib)), 2.0},
        {mem::MemType::SlowMem,
         mem::bytesToPages(bench::scaledBytes(4 * mem::gib)),
         mem::bytesToPages(bench::scaledBytes(8 * mem::gib)), 1.0}};
    return cfg;
}

vmm::VmConfig
metisContract()
{
    vmm::VmConfig cfg;
    cfg.reservations = {
        {mem::MemType::FastMem,
         mem::bytesToPages(bench::scaledBytes(3 * mem::gib)),
         mem::bytesToPages(bench::scaledBytes(4 * mem::gib)), 2.0},
        {mem::MemType::SlowMem,
         mem::bytesToPages(bench::scaledBytes(4 * mem::gib)),
         mem::bytesToPages(bench::scaledBytes(8 * mem::gib)), 1.0}};
    return cfg;
}

struct PairResult
{
    workload::Workload::Result graphchi;
    workload::Workload::Result metis;
};

PairResult
runPair(Sharing sharing, double scale)
{
    core::HostConfig host;
    host.fast = mem::dramSpec(bench::scaledBytes(4 * mem::gib));
    host.slow = mem::defaultSlowMemSpec(bench::scaledBytes(8 * mem::gib));
    core::HeteroSystem sys(host);

    switch (sharing) {
      case Sharing::VmmExclusive:
        sys.vmm().setFairness(std::make_unique<vmm::MaxMinFairness>());
        break;
      case Sharing::MaxMinCoordinated:
        sys.vmm().setFairness(std::make_unique<vmm::MaxMinFairness>());
        break;
      case Sharing::DrfCoordinated:
        sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());
        break;
    }

    const core::Approach app_approach =
        sharing == Sharing::VmmExclusive ? core::Approach::VmmExclusive
                                         : core::Approach::Coordinated;

    // Boot to the minimum reservation; growth happens via the
    // on-demand balloon, gated by the fairness policy.
    core::GuestSizing g_sizing;
    g_sizing.name = "graphchi-vm";
    g_sizing.fast_max = bench::scaledBytes(4 * mem::gib);
    g_sizing.fast_initial = bench::scaledBytes(1 * mem::gib);
    g_sizing.slow_max = bench::scaledBytes(8 * mem::gib);
    g_sizing.slow_initial = bench::scaledBytes(4 * mem::gib);

    core::GuestSizing m_sizing;
    m_sizing.name = "metis-vm";
    m_sizing.fast_max = bench::scaledBytes(4 * mem::gib);
    m_sizing.fast_initial = bench::scaledBytes(3 * mem::gib);
    m_sizing.slow_max = bench::scaledBytes(8 * mem::gib);
    m_sizing.slow_initial = bench::scaledBytes(4 * mem::gib);
    m_sizing.seed = 7;

    // Reservation contracts are installed via a policy wrapper: the
    // system takes VmConfig from the policy, so wrap the policies to
    // inject them.
    struct ContractPolicy final : policy::ManagementPolicy
    {
        std::unique_ptr<policy::ManagementPolicy> inner;
        vmm::VmConfig contract;
        const char *name() const override { return inner->name(); }
        void
        configureGuest(guestos::GuestConfig &cfg) const override
        {
            inner->configureGuest(cfg);
        }
        void
        configureVm(vmm::VmConfig &cfg) const override
        {
            inner->configureVm(cfg);
            cfg.reservations = contract.reservations;
        }
        void
        attach(vmm::Vmm &vmm, vmm::VmId id,
               guestos::GuestKernel &kernel) override
        {
            inner->attach(vmm, id, kernel);
        }
    };

    auto wrap = [&](vmm::VmConfig contract) {
        auto p = std::make_unique<ContractPolicy>();
        p->inner = core::makePolicy(app_approach);
        p->contract = std::move(contract);
        return p;
    };

    auto &g_slot = sys.addVm(wrap(graphchiContract()), g_sizing);
    auto &m_slot = sys.addVm(wrap(metisContract()), m_sizing);

    auto results = sys.runMany(
        {{&g_slot, workload::makeGraphchiTwitter(scale)},
         {&m_slot, workload::makeMetisLarge(scale)}});
    return PairResult{results[0], results[1]};
}

workload::Workload::Result
runSingle(const workload::WorkloadFactory &factory, core::Approach a,
          double scale)
{
    return core::run(bench::paperScenario(a).withScale(scale), factory);
}

} // namespace

int
main()
{
    bench::banner("Figure 13: multi-VM resource sharing");
    const double scale = bench::benchScale();

    // SlowMem-only baselines per app (the figure's reference).
    const auto g_slow = runSingle(workload::makeGraphchiTwitter(scale),
                                  core::Approach::SlowMemOnly, scale);
    const auto m_slow = runSingle(workload::makeMetisLarge(scale),
                                  core::Approach::SlowMemOnly, scale);

    sim::Table fig("Figure 13: % gain relative to SlowMem-only");
    fig.header({"scheme", "Graphchi VM", "Metis VM"});

    for (Sharing s : {Sharing::VmmExclusive, Sharing::MaxMinCoordinated,
                      Sharing::DrfCoordinated}) {
        const auto pair = runPair(s, scale);
        fig.row({sharingName(s),
                 sim::Table::pct(core::gainPercent(g_slow, pair.graphchi),
                                 1),
                 sim::Table::pct(core::gainPercent(m_slow, pair.metis),
                                 1)});
    }

    // Single-VM coordinated runs: the paper's stars.
    const auto g_single =
        runSingle(workload::makeGraphchiTwitter(scale),
                  core::Approach::Coordinated, scale);
    const auto m_single = runSingle(workload::makeMetisLarge(scale),
                                    core::Approach::Coordinated, scale);
    fig.row({"Single-VM HeteroOS-coordinated (stars)",
             sim::Table::pct(core::gainPercent(g_slow, g_single), 1),
             sim::Table::pct(core::gainPercent(m_slow, m_single), 1)});
    fig.print();

    std::puts("Expected shape: DRF protects the Graphchi VM's dominant\n"
              "SlowMem from the memory-hungry Metis VM — its gain rises\n"
              "well above the max-min run (paper: +42% vs max-min,\n"
              "+87% vs VMM-exclusive) while Metis stays comparable.");
    return 0;
}
