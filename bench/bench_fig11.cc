/**
 * @file
 * Figure 11: impact of coordinated guestOS-VMM management.
 *
 * Five applications x capacity ratios {1/4, 1/8} x three systems:
 * HeteroOS-LRU (guest only), VMM-exclusive (HeteroVisor), and
 * HeteroOS-coordinated. % gain over SlowMem-only; FastMem-only shown
 * as the ceiling.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 11: coordinated management gains");

    const double ratios[] = {0.25, 0.125};
    const char *ratio_labels[] = {"1/4", "1/8"};
    const core::Approach approaches[] = {core::Approach::HeteroLru,
                                         core::Approach::VmmExclusive,
                                         core::Approach::Coordinated};

    sim::Table fig("Figure 11: % gain relative to SlowMem-only");
    fig.header({"app", "ratio", "HeteroOS-LRU", "VMM-exclusive",
                "HeteroOS-coordinated", "FastMem-only"});

    for (workload::AppId app : workload::placementApps) {
        const auto slow = core::run(
            bench::paperScenario(core::Approach::SlowMemOnly)
                .withApp(app));
        const auto fast = core::run(
            bench::paperScenario(core::Approach::FastMemOnly)
                .withApp(app));

        for (std::size_t ri = 0; ri < 2; ++ri) {
            std::vector<std::string> row = {workload::appName(app),
                                            ratio_labels[ri]};
            for (core::Approach a : approaches) {
                auto s = bench::paperScenario(a).withApp(app);
                s.fast_bytes = static_cast<std::uint64_t>(
                    static_cast<double>(s.slow_bytes) * ratios[ri]);
                const auto r = core::run(s);
                row.push_back(
                    sim::Table::pct(core::gainPercent(slow, r), 0));
            }
            row.push_back(
                sim::Table::pct(core::gainPercent(slow, fast), 0));
            fig.row(row);
        }
    }
    fig.print();

    std::puts("Expected shape: coordinated >= HeteroOS-LRU (by ~15-30%\n"
              "for the capacity-hungry graph apps), both >> VMM-\n"
              "exclusive; LevelDB gains little from coordination.");
    return 0;
}
