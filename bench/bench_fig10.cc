/**
 * @file
 * Figure 10: FastMem allocation miss ratio at the 1/8 capacity
 * ratio — total FastMem allocation misses over total allocation
 * requests, per application and approach.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 10: FastMem allocation miss ratio (1/8)");

    const core::Approach approaches[] = {
        core::Approach::HeapOd, core::Approach::HeapIoSlabOd,
        core::Approach::HeteroLru, core::Approach::NumaPreferred};

    sim::Table fig("Figure 10: miss ratio at 1/8 FastMem capacity");
    std::vector<std::string> header = {"app"};
    for (auto a : approaches)
        header.push_back(core::approachName(a));
    fig.header(header);

    for (workload::AppId app : workload::placementApps) {
        std::vector<std::string> row = {workload::appName(app)};
        for (core::Approach a : approaches) {
            auto s = bench::paperScenario(a).withApp(app);
            s.fast_bytes = s.slow_bytes / 8;
            auto sys = core::systemFor(s);
            auto &slot = sys->slot(0);
            sys->runOne(slot, workload::makeApp(app, s.scale));
            row.push_back(sim::Table::num(
                slot.kernel->allocator().overallFastMissRatio(), 2));
        }
        fig.row(row);
    }
    fig.print();

    std::puts("Expected shape: HeteroOS-LRU lowest (active reclaim\n"
              "keeps FastMem allocatable); NUMA-preferred worst —\n"
              "near 1.0 once the fast node fills and never recovers\n"
              "(paper bar labels: 0.72/0.96/0.92/1.00/0.57).");
    return 0;
}
