# Empty compiler generated dependencies file for multi_tenant_drf.
# This may be replaced when dependencies are built.
