file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_drf.dir/multi_tenant_drf.cc.o"
  "CMakeFiles/multi_tenant_drf.dir/multi_tenant_drf.cc.o.d"
  "multi_tenant_drf"
  "multi_tenant_drf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_drf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
