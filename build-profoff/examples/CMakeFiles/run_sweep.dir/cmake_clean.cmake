file(REMOVE_RECURSE
  "CMakeFiles/run_sweep.dir/run_sweep.cc.o"
  "CMakeFiles/run_sweep.dir/run_sweep.cc.o.d"
  "run_sweep"
  "run_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
