# Empty compiler generated dependencies file for run_sweep.
# This may be replaced when dependencies are built.
