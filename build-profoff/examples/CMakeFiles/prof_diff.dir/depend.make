# Empty dependencies file for prof_diff.
# This may be replaced when dependencies are built.
