file(REMOVE_RECURSE
  "CMakeFiles/prof_diff.dir/prof_diff.cc.o"
  "CMakeFiles/prof_diff.dir/prof_diff.cc.o.d"
  "hos-profdiff"
  "hos-profdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prof_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
