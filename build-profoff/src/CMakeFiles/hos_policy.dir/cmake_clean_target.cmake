file(REMOVE_RECURSE
  "libhos_policy.a"
)
