
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/baselines.cc" "src/CMakeFiles/hos_policy.dir/policy/baselines.cc.o" "gcc" "src/CMakeFiles/hos_policy.dir/policy/baselines.cc.o.d"
  "/root/repo/src/policy/coordinated.cc" "src/CMakeFiles/hos_policy.dir/policy/coordinated.cc.o" "gcc" "src/CMakeFiles/hos_policy.dir/policy/coordinated.cc.o.d"
  "/root/repo/src/policy/heap_io_slab_od.cc" "src/CMakeFiles/hos_policy.dir/policy/heap_io_slab_od.cc.o" "gcc" "src/CMakeFiles/hos_policy.dir/policy/heap_io_slab_od.cc.o.d"
  "/root/repo/src/policy/heap_od.cc" "src/CMakeFiles/hos_policy.dir/policy/heap_od.cc.o" "gcc" "src/CMakeFiles/hos_policy.dir/policy/heap_od.cc.o.d"
  "/root/repo/src/policy/hetero_lru_policy.cc" "src/CMakeFiles/hos_policy.dir/policy/hetero_lru_policy.cc.o" "gcc" "src/CMakeFiles/hos_policy.dir/policy/hetero_lru_policy.cc.o.d"
  "/root/repo/src/policy/vmm_exclusive.cc" "src/CMakeFiles/hos_policy.dir/policy/vmm_exclusive.cc.o" "gcc" "src/CMakeFiles/hos_policy.dir/policy/vmm_exclusive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/src/CMakeFiles/hos_vmm.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_guestos.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_check.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_mem.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_prof.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
