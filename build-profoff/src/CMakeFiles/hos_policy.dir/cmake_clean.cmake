file(REMOVE_RECURSE
  "CMakeFiles/hos_policy.dir/policy/baselines.cc.o"
  "CMakeFiles/hos_policy.dir/policy/baselines.cc.o.d"
  "CMakeFiles/hos_policy.dir/policy/coordinated.cc.o"
  "CMakeFiles/hos_policy.dir/policy/coordinated.cc.o.d"
  "CMakeFiles/hos_policy.dir/policy/heap_io_slab_od.cc.o"
  "CMakeFiles/hos_policy.dir/policy/heap_io_slab_od.cc.o.d"
  "CMakeFiles/hos_policy.dir/policy/heap_od.cc.o"
  "CMakeFiles/hos_policy.dir/policy/heap_od.cc.o.d"
  "CMakeFiles/hos_policy.dir/policy/hetero_lru_policy.cc.o"
  "CMakeFiles/hos_policy.dir/policy/hetero_lru_policy.cc.o.d"
  "CMakeFiles/hos_policy.dir/policy/vmm_exclusive.cc.o"
  "CMakeFiles/hos_policy.dir/policy/vmm_exclusive.cc.o.d"
  "libhos_policy.a"
  "libhos_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
