# Empty dependencies file for hos_policy.
# This may be replaced when dependencies are built.
