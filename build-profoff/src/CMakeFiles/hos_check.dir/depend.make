# Empty dependencies file for hos_check.
# This may be replaced when dependencies are built.
