
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/check/check.cc" "src/CMakeFiles/hos_check.dir/check/check.cc.o" "gcc" "src/CMakeFiles/hos_check.dir/check/check.cc.o.d"
  "/root/repo/src/check/page_state.cc" "src/CMakeFiles/hos_check.dir/check/page_state.cc.o" "gcc" "src/CMakeFiles/hos_check.dir/check/page_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/src/CMakeFiles/hos_mem.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
