file(REMOVE_RECURSE
  "CMakeFiles/hos_check.dir/check/check.cc.o"
  "CMakeFiles/hos_check.dir/check/check.cc.o.d"
  "CMakeFiles/hos_check.dir/check/page_state.cc.o"
  "CMakeFiles/hos_check.dir/check/page_state.cc.o.d"
  "libhos_check.a"
  "libhos_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
