file(REMOVE_RECURSE
  "libhos_check.a"
)
