
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/hos_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/hos_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/json.cc" "src/CMakeFiles/hos_sim.dir/sim/json.cc.o" "gcc" "src/CMakeFiles/hos_sim.dir/sim/json.cc.o.d"
  "/root/repo/src/sim/log.cc" "src/CMakeFiles/hos_sim.dir/sim/log.cc.o" "gcc" "src/CMakeFiles/hos_sim.dir/sim/log.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/hos_sim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/hos_sim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/hos_sim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/hos_sim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/table.cc" "src/CMakeFiles/hos_sim.dir/sim/table.cc.o" "gcc" "src/CMakeFiles/hos_sim.dir/sim/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
