file(REMOVE_RECURSE
  "CMakeFiles/hos_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/hos_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/hos_sim.dir/sim/json.cc.o"
  "CMakeFiles/hos_sim.dir/sim/json.cc.o.d"
  "CMakeFiles/hos_sim.dir/sim/log.cc.o"
  "CMakeFiles/hos_sim.dir/sim/log.cc.o.d"
  "CMakeFiles/hos_sim.dir/sim/rng.cc.o"
  "CMakeFiles/hos_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/hos_sim.dir/sim/stats.cc.o"
  "CMakeFiles/hos_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/hos_sim.dir/sim/table.cc.o"
  "CMakeFiles/hos_sim.dir/sim/table.cc.o.d"
  "libhos_sim.a"
  "libhos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
