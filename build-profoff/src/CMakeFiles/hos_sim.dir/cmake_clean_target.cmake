file(REMOVE_RECURSE
  "libhos_sim.a"
)
