# Empty dependencies file for hos_sim.
# This may be replaced when dependencies are built.
