# Empty dependencies file for hos_mem.
# This may be replaced when dependencies are built.
