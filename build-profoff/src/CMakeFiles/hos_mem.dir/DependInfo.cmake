
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_model.cc" "src/CMakeFiles/hos_mem.dir/mem/cache_model.cc.o" "gcc" "src/CMakeFiles/hos_mem.dir/mem/cache_model.cc.o.d"
  "/root/repo/src/mem/machine_memory.cc" "src/CMakeFiles/hos_mem.dir/mem/machine_memory.cc.o" "gcc" "src/CMakeFiles/hos_mem.dir/mem/machine_memory.cc.o.d"
  "/root/repo/src/mem/mem_device.cc" "src/CMakeFiles/hos_mem.dir/mem/mem_device.cc.o" "gcc" "src/CMakeFiles/hos_mem.dir/mem/mem_device.cc.o.d"
  "/root/repo/src/mem/mem_spec.cc" "src/CMakeFiles/hos_mem.dir/mem/mem_spec.cc.o" "gcc" "src/CMakeFiles/hos_mem.dir/mem/mem_spec.cc.o.d"
  "/root/repo/src/mem/tlb_model.cc" "src/CMakeFiles/hos_mem.dir/mem/tlb_model.cc.o" "gcc" "src/CMakeFiles/hos_mem.dir/mem/tlb_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
