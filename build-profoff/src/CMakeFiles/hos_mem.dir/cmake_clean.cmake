file(REMOVE_RECURSE
  "CMakeFiles/hos_mem.dir/mem/cache_model.cc.o"
  "CMakeFiles/hos_mem.dir/mem/cache_model.cc.o.d"
  "CMakeFiles/hos_mem.dir/mem/machine_memory.cc.o"
  "CMakeFiles/hos_mem.dir/mem/machine_memory.cc.o.d"
  "CMakeFiles/hos_mem.dir/mem/mem_device.cc.o"
  "CMakeFiles/hos_mem.dir/mem/mem_device.cc.o.d"
  "CMakeFiles/hos_mem.dir/mem/mem_spec.cc.o"
  "CMakeFiles/hos_mem.dir/mem/mem_spec.cc.o.d"
  "CMakeFiles/hos_mem.dir/mem/tlb_model.cc.o"
  "CMakeFiles/hos_mem.dir/mem/tlb_model.cc.o.d"
  "libhos_mem.a"
  "libhos_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
