file(REMOVE_RECURSE
  "libhos_mem.a"
)
