file(REMOVE_RECURSE
  "libhos_prof.a"
)
