file(REMOVE_RECURSE
  "CMakeFiles/hos_prof.dir/prof/diff.cc.o"
  "CMakeFiles/hos_prof.dir/prof/diff.cc.o.d"
  "CMakeFiles/hos_prof.dir/prof/prof.cc.o"
  "CMakeFiles/hos_prof.dir/prof/prof.cc.o.d"
  "CMakeFiles/hos_prof.dir/prof/report.cc.o"
  "CMakeFiles/hos_prof.dir/prof/report.cc.o.d"
  "libhos_prof.a"
  "libhos_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
