# Empty dependencies file for hos_prof.
# This may be replaced when dependencies are built.
