# Empty dependencies file for hos_core.
# This may be replaced when dependencies are built.
