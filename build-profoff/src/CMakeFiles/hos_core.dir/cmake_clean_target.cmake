file(REMOVE_RECURSE
  "libhos_core.a"
)
