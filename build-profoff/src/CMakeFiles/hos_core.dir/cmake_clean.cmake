file(REMOVE_RECURSE
  "CMakeFiles/hos_core.dir/core/experiment.cc.o"
  "CMakeFiles/hos_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/hos_core.dir/core/hetero_system.cc.o"
  "CMakeFiles/hos_core.dir/core/hetero_system.cc.o.d"
  "CMakeFiles/hos_core.dir/core/report.cc.o"
  "CMakeFiles/hos_core.dir/core/report.cc.o.d"
  "CMakeFiles/hos_core.dir/core/scenario.cc.o"
  "CMakeFiles/hos_core.dir/core/scenario.cc.o.d"
  "CMakeFiles/hos_core.dir/core/sweep.cc.o"
  "CMakeFiles/hos_core.dir/core/sweep.cc.o.d"
  "libhos_core.a"
  "libhos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
