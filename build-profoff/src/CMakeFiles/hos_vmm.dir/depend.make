# Empty dependencies file for hos_vmm.
# This may be replaced when dependencies are built.
