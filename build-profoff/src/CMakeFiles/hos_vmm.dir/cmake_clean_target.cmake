file(REMOVE_RECURSE
  "libhos_vmm.a"
)
