
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/ballooning.cc" "src/CMakeFiles/hos_vmm.dir/vmm/ballooning.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/ballooning.cc.o.d"
  "/root/repo/src/vmm/drf.cc" "src/CMakeFiles/hos_vmm.dir/vmm/drf.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/drf.cc.o.d"
  "/root/repo/src/vmm/hotness_tracker.cc" "src/CMakeFiles/hos_vmm.dir/vmm/hotness_tracker.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/hotness_tracker.cc.o.d"
  "/root/repo/src/vmm/max_min.cc" "src/CMakeFiles/hos_vmm.dir/vmm/max_min.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/max_min.cc.o.d"
  "/root/repo/src/vmm/migration_engine.cc" "src/CMakeFiles/hos_vmm.dir/vmm/migration_engine.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/migration_engine.cc.o.d"
  "/root/repo/src/vmm/p2m.cc" "src/CMakeFiles/hos_vmm.dir/vmm/p2m.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/p2m.cc.o.d"
  "/root/repo/src/vmm/shared_ring.cc" "src/CMakeFiles/hos_vmm.dir/vmm/shared_ring.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/shared_ring.cc.o.d"
  "/root/repo/src/vmm/vmm.cc" "src/CMakeFiles/hos_vmm.dir/vmm/vmm.cc.o" "gcc" "src/CMakeFiles/hos_vmm.dir/vmm/vmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/src/CMakeFiles/hos_guestos.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_check.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_mem.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_prof.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
