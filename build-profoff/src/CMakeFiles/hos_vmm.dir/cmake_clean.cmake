file(REMOVE_RECURSE
  "CMakeFiles/hos_vmm.dir/vmm/ballooning.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/ballooning.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/drf.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/drf.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/hotness_tracker.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/hotness_tracker.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/max_min.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/max_min.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/migration_engine.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/migration_engine.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/p2m.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/p2m.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/shared_ring.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/shared_ring.cc.o.d"
  "CMakeFiles/hos_vmm.dir/vmm/vmm.cc.o"
  "CMakeFiles/hos_vmm.dir/vmm/vmm.cc.o.d"
  "libhos_vmm.a"
  "libhos_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
