
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guestos/address_space.cc" "src/CMakeFiles/hos_guestos.dir/guestos/address_space.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/address_space.cc.o.d"
  "/root/repo/src/guestos/balloon_frontend.cc" "src/CMakeFiles/hos_guestos.dir/guestos/balloon_frontend.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/balloon_frontend.cc.o.d"
  "/root/repo/src/guestos/blockdev.cc" "src/CMakeFiles/hos_guestos.dir/guestos/blockdev.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/blockdev.cc.o.d"
  "/root/repo/src/guestos/buddy_allocator.cc" "src/CMakeFiles/hos_guestos.dir/guestos/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/buddy_allocator.cc.o.d"
  "/root/repo/src/guestos/hetero_allocator.cc" "src/CMakeFiles/hos_guestos.dir/guestos/hetero_allocator.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/hetero_allocator.cc.o.d"
  "/root/repo/src/guestos/hetero_lru.cc" "src/CMakeFiles/hos_guestos.dir/guestos/hetero_lru.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/hetero_lru.cc.o.d"
  "/root/repo/src/guestos/kernel.cc" "src/CMakeFiles/hos_guestos.dir/guestos/kernel.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/kernel.cc.o.d"
  "/root/repo/src/guestos/lru.cc" "src/CMakeFiles/hos_guestos.dir/guestos/lru.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/lru.cc.o.d"
  "/root/repo/src/guestos/migration_frontend.cc" "src/CMakeFiles/hos_guestos.dir/guestos/migration_frontend.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/migration_frontend.cc.o.d"
  "/root/repo/src/guestos/numa.cc" "src/CMakeFiles/hos_guestos.dir/guestos/numa.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/numa.cc.o.d"
  "/root/repo/src/guestos/page.cc" "src/CMakeFiles/hos_guestos.dir/guestos/page.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/page.cc.o.d"
  "/root/repo/src/guestos/page_cache.cc" "src/CMakeFiles/hos_guestos.dir/guestos/page_cache.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/page_cache.cc.o.d"
  "/root/repo/src/guestos/page_table.cc" "src/CMakeFiles/hos_guestos.dir/guestos/page_table.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/page_table.cc.o.d"
  "/root/repo/src/guestos/percpu_lists.cc" "src/CMakeFiles/hos_guestos.dir/guestos/percpu_lists.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/percpu_lists.cc.o.d"
  "/root/repo/src/guestos/residency.cc" "src/CMakeFiles/hos_guestos.dir/guestos/residency.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/residency.cc.o.d"
  "/root/repo/src/guestos/slab.cc" "src/CMakeFiles/hos_guestos.dir/guestos/slab.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/slab.cc.o.d"
  "/root/repo/src/guestos/swap.cc" "src/CMakeFiles/hos_guestos.dir/guestos/swap.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/swap.cc.o.d"
  "/root/repo/src/guestos/vma.cc" "src/CMakeFiles/hos_guestos.dir/guestos/vma.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/vma.cc.o.d"
  "/root/repo/src/guestos/zone.cc" "src/CMakeFiles/hos_guestos.dir/guestos/zone.cc.o" "gcc" "src/CMakeFiles/hos_guestos.dir/guestos/zone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/src/CMakeFiles/hos_mem.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_check.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_prof.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
