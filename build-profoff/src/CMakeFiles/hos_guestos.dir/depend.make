# Empty dependencies file for hos_guestos.
# This may be replaced when dependencies are built.
