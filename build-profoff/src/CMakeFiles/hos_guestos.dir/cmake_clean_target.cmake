file(REMOVE_RECURSE
  "libhos_guestos.a"
)
