# Empty dependencies file for hos_trace.
# This may be replaced when dependencies are built.
