file(REMOVE_RECURSE
  "libhos_trace.a"
)
