file(REMOVE_RECURSE
  "CMakeFiles/hos_trace.dir/trace/exporters.cc.o"
  "CMakeFiles/hos_trace.dir/trace/exporters.cc.o.d"
  "CMakeFiles/hos_trace.dir/trace/stats_snapshot.cc.o"
  "CMakeFiles/hos_trace.dir/trace/stats_snapshot.cc.o.d"
  "CMakeFiles/hos_trace.dir/trace/trace.cc.o"
  "CMakeFiles/hos_trace.dir/trace/trace.cc.o.d"
  "libhos_trace.a"
  "libhos_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
