file(REMOVE_RECURSE
  "CMakeFiles/hos_workload.dir/workload/apps.cc.o"
  "CMakeFiles/hos_workload.dir/workload/apps.cc.o.d"
  "CMakeFiles/hos_workload.dir/workload/memlat.cc.o"
  "CMakeFiles/hos_workload.dir/workload/memlat.cc.o.d"
  "CMakeFiles/hos_workload.dir/workload/stream.cc.o"
  "CMakeFiles/hos_workload.dir/workload/stream.cc.o.d"
  "CMakeFiles/hos_workload.dir/workload/workload.cc.o"
  "CMakeFiles/hos_workload.dir/workload/workload.cc.o.d"
  "libhos_workload.a"
  "libhos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
