# Empty dependencies file for hos_workload.
# This may be replaced when dependencies are built.
