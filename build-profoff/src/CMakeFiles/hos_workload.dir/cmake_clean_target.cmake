file(REMOVE_RECURSE
  "libhos_workload.a"
)
