file(REMOVE_RECURSE
  "CMakeFiles/hos_audit.dir/check/audit_daemon.cc.o"
  "CMakeFiles/hos_audit.dir/check/audit_daemon.cc.o.d"
  "CMakeFiles/hos_audit.dir/check/auditors.cc.o"
  "CMakeFiles/hos_audit.dir/check/auditors.cc.o.d"
  "libhos_audit.a"
  "libhos_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hos_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
