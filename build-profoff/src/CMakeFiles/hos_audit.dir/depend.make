# Empty dependencies file for hos_audit.
# This may be replaced when dependencies are built.
