file(REMOVE_RECURSE
  "libhos_audit.a"
)
