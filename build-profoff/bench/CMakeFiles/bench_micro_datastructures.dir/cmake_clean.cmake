file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_datastructures.dir/bench_micro_datastructures.cc.o"
  "CMakeFiles/bench_micro_datastructures.dir/bench_micro_datastructures.cc.o.d"
  "bench_micro_datastructures"
  "bench_micro_datastructures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_datastructures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
