# Empty dependencies file for bench_micro_datastructures.
# This may be replaced when dependencies are built.
