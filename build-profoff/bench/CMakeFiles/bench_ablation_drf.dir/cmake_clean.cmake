file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_drf.dir/bench_ablation_drf.cc.o"
  "CMakeFiles/bench_ablation_drf.dir/bench_ablation_drf.cc.o.d"
  "bench_ablation_drf"
  "bench_ablation_drf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_drf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
