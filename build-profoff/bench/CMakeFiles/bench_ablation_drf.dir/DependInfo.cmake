
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_drf.cc" "bench/CMakeFiles/bench_ablation_drf.dir/bench_ablation_drf.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_drf.dir/bench_ablation_drf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_core.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_policy.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_workload.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_audit.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_vmm.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_guestos.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_check.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_mem.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_prof.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
