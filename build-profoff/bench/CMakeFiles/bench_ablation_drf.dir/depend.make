# Empty dependencies file for bench_ablation_drf.
# This may be replaced when dependencies are built.
