# Empty compiler generated dependencies file for bench_ablation_percpu.
# This may be replaced when dependencies are built.
