file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_percpu.dir/bench_ablation_percpu.cc.o"
  "CMakeFiles/bench_ablation_percpu.dir/bench_ablation_percpu.cc.o.d"
  "bench_ablation_percpu"
  "bench_ablation_percpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_percpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
