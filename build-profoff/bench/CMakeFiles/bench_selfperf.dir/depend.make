# Empty dependencies file for bench_selfperf.
# This may be replaced when dependencies are built.
