file(REMOVE_RECURSE
  "CMakeFiles/bench_selfperf.dir/bench_selfperf.cc.o"
  "CMakeFiles/bench_selfperf.dir/bench_selfperf.cc.o.d"
  "bench_selfperf"
  "bench_selfperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selfperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
