# Empty compiler generated dependencies file for hos_tests.
# This may be replaced when dependencies are built.
