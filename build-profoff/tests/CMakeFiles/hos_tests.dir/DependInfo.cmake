
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address_space.cc" "tests/CMakeFiles/hos_tests.dir/test_address_space.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_address_space.cc.o.d"
  "/root/repo/tests/test_balloon.cc" "tests/CMakeFiles/hos_tests.dir/test_balloon.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_balloon.cc.o.d"
  "/root/repo/tests/test_buddy_allocator.cc" "tests/CMakeFiles/hos_tests.dir/test_buddy_allocator.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_buddy_allocator.cc.o.d"
  "/root/repo/tests/test_cache_model.cc" "tests/CMakeFiles/hos_tests.dir/test_cache_model.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_cache_model.cc.o.d"
  "/root/repo/tests/test_check.cc" "tests/CMakeFiles/hos_tests.dir/test_check.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_check.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/hos_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fairness.cc" "tests/CMakeFiles/hos_tests.dir/test_fairness.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_fairness.cc.o.d"
  "/root/repo/tests/test_golden_determinism.cc" "tests/CMakeFiles/hos_tests.dir/test_golden_determinism.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_golden_determinism.cc.o.d"
  "/root/repo/tests/test_hetero_allocator.cc" "tests/CMakeFiles/hos_tests.dir/test_hetero_allocator.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_hetero_allocator.cc.o.d"
  "/root/repo/tests/test_hetero_lru.cc" "tests/CMakeFiles/hos_tests.dir/test_hetero_lru.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_hetero_lru.cc.o.d"
  "/root/repo/tests/test_hotness_tracker.cc" "tests/CMakeFiles/hos_tests.dir/test_hotness_tracker.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_hotness_tracker.cc.o.d"
  "/root/repo/tests/test_io_devices.cc" "tests/CMakeFiles/hos_tests.dir/test_io_devices.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_io_devices.cc.o.d"
  "/root/repo/tests/test_lru.cc" "tests/CMakeFiles/hos_tests.dir/test_lru.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_lru.cc.o.d"
  "/root/repo/tests/test_machine_memory.cc" "tests/CMakeFiles/hos_tests.dir/test_machine_memory.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_machine_memory.cc.o.d"
  "/root/repo/tests/test_mem_device.cc" "tests/CMakeFiles/hos_tests.dir/test_mem_device.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_mem_device.cc.o.d"
  "/root/repo/tests/test_migration_cost.cc" "tests/CMakeFiles/hos_tests.dir/test_migration_cost.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_migration_cost.cc.o.d"
  "/root/repo/tests/test_migration_engine.cc" "tests/CMakeFiles/hos_tests.dir/test_migration_engine.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_migration_engine.cc.o.d"
  "/root/repo/tests/test_migration_frontend.cc" "tests/CMakeFiles/hos_tests.dir/test_migration_frontend.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_migration_frontend.cc.o.d"
  "/root/repo/tests/test_multitier.cc" "tests/CMakeFiles/hos_tests.dir/test_multitier.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_multitier.cc.o.d"
  "/root/repo/tests/test_p2m.cc" "tests/CMakeFiles/hos_tests.dir/test_p2m.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_p2m.cc.o.d"
  "/root/repo/tests/test_page_cache.cc" "tests/CMakeFiles/hos_tests.dir/test_page_cache.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_page_cache.cc.o.d"
  "/root/repo/tests/test_page_list.cc" "tests/CMakeFiles/hos_tests.dir/test_page_list.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_page_list.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/hos_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_percpu_lists.cc" "tests/CMakeFiles/hos_tests.dir/test_percpu_lists.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_percpu_lists.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/hos_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_prof.cc" "tests/CMakeFiles/hos_tests.dir/test_prof.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_prof.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/hos_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_residency.cc" "tests/CMakeFiles/hos_tests.dir/test_residency.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_residency.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/hos_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_shared_ring.cc" "tests/CMakeFiles/hos_tests.dir/test_shared_ring.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_shared_ring.cc.o.d"
  "/root/repo/tests/test_slab.cc" "tests/CMakeFiles/hos_tests.dir/test_slab.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_slab.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/hos_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/hos_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stats_snapshot.cc" "tests/CMakeFiles/hos_tests.dir/test_stats_snapshot.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_stats_snapshot.cc.o.d"
  "/root/repo/tests/test_sweep.cc" "tests/CMakeFiles/hos_tests.dir/test_sweep.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_sweep.cc.o.d"
  "/root/repo/tests/test_system_integration.cc" "tests/CMakeFiles/hos_tests.dir/test_system_integration.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_system_integration.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/hos_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_vmm.cc" "tests/CMakeFiles/hos_tests.dir/test_vmm.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_vmm.cc.o.d"
  "/root/repo/tests/test_workload_engine.cc" "tests/CMakeFiles/hos_tests.dir/test_workload_engine.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_workload_engine.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/hos_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_workloads.cc.o.d"
  "/root/repo/tests/test_zone_numa.cc" "tests/CMakeFiles/hos_tests.dir/test_zone_numa.cc.o" "gcc" "tests/CMakeFiles/hos_tests.dir/test_zone_numa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-profoff/src/CMakeFiles/hos_core.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_policy.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_workload.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_audit.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_vmm.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_guestos.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_check.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_mem.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_prof.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_trace.dir/DependInfo.cmake"
  "/root/repo/build-profoff/src/CMakeFiles/hos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
