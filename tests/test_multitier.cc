/**
 * @file
 * Paper §4.3 extension: three-tier hosts (FastMem / MediumMem /
 * SlowMem) and the page-type-specific demotion chain — heap pages
 * step down one level at a time, finished I/O pages go straight to
 * the slowest tier.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

std::unique_ptr<GuestKernel>
threeTierGuest()
{
    guestos::GuestConfig cfg;
    cfg.name = "tri";
    cfg.cpus = 2;
    cfg.alloc = heapIoSlabOdConfig();
    cfg.alloc.balloon_on_pressure = false;
    cfg.lru.enabled = true;
    cfg.nodes = {{mem::MemType::FastMem, 16 * mem::mib, 16 * mem::mib},
                 {mem::MemType::MediumMem, 32 * mem::mib, 32 * mem::mib},
                 {mem::MemType::SlowMem, 64 * mem::mib, 64 * mem::mib}};
    auto kernel = std::make_unique<GuestKernel>(cfg);
    for (unsigned nid = 0; nid < kernel->numNodes(); ++nid) {
        auto &node = kernel->node(nid);
        auto gpfns = kernel->takeUnpopulatedGpfns(nid, node.spanPages());
        for (Gpfn pfn : gpfns) {
            kernel->pageMeta(pfn).setPopulated(true);
            node.zoneOf(pfn).buddy().addFreeRange(pfn, 1);
        }
        for (std::size_t zi = 0; zi < node.numZones(); ++zi)
            node.zone(zi).updateWatermarks();
    }
    kernel->events().runUntil(sim::milliseconds(1));
    return kernel;
}

TEST(MultiTier, ThreeNodesBootAndAllocate)
{
    auto k = threeTierGuest();
    EXPECT_EQ(k->numNodes(), 3u);
    EXPECT_NE(k->nodeFor(mem::MemType::MediumMem), nullptr);
    // MediumMem behaves as a conventional node (DMA split applies
    // only to big SlowMem nodes; 32 MiB keeps one Normal zone).
    EXPECT_EQ(k->nodeFor(mem::MemType::MediumMem)->numZones(), 1u);
}

TEST(MultiTier, HeapDemotesOneLevelAtATime)
{
    auto k = threeTierGuest();
    auto &as = k->createProcess("p");
    const auto va = as.mmap(mem::pageSize, VmaKind::Anon,
                            MemHint::FastMem);
    const Gpfn pfn = as.touch(va, true);
    k->pageMeta(pfn).setLastTouch(1);
    ASSERT_EQ(k->pageMeta(pfn).mem_type(), mem::MemType::FastMem);

    ASSERT_EQ(k->heteroLru().demotePage(pfn), 1u);
    auto now = as.translate(va);
    ASSERT_TRUE(now.has_value());
    EXPECT_EQ(k->pageMeta(*now).mem_type(), mem::MemType::MediumMem)
        << "heap pages have high reuse: one level at a time";
}

TEST(MultiTier, IoPagesSkipToSlowest)
{
    auto k = threeTierGuest();
    const FileId f = k->pageCache().createFile(mem::mib);
    auto r = k->pageCache().read(f, 0, 4 * mem::kib, MemHint::FastMem);
    ASSERT_EQ(r.pages.size(), 1u);
    const Gpfn pfn = r.pages[0];
    ASSERT_EQ(k->pageMeta(pfn).mem_type(), mem::MemType::FastMem);

    ASSERT_EQ(k->heteroLru().demotePage(pfn), 1u);
    auto again = k->pageCache().read(f, 0, 4 * mem::kib);
    EXPECT_EQ(again.pages_missed, 0u);
    EXPECT_EQ(k->pageMeta(again.pages[0]).mem_type(),
              mem::MemType::SlowMem)
        << "finished I/O pages are mostly dead: straight to the "
           "largest tier";
}

TEST(MultiTier, HostBuildsMediumNode)
{
    core::HostConfig host;
    host.fast = mem::dramSpec(16 * mem::mib);
    host.medium = mem::throttledSpec(2.0, 3.0, 32 * mem::mib);
    host.slow = mem::defaultSlowMemSpec(64 * mem::mib);
    host.has_medium = true;
    core::HeteroSystem sys(host);
    EXPECT_EQ(sys.machine().numNodes(), 3u);
    EXPECT_TRUE(sys.machine().hasType(mem::MemType::MediumMem));

    auto &slot = sys.addVm(core::makePolicy(core::Approach::HeteroLru),
                           core::GuestSizing{});
    EXPECT_TRUE(slot.kernel->hasType(mem::MemType::MediumMem));
    auto res = sys.runOne(
        slot, workload::makeApp(workload::AppId::LevelDb, 0.02));
    EXPECT_GT(res.elapsed, 0u);
}

} // namespace
