/**
 * @file
 * MigrationCostModel: exact reproduction of the Table 6 anchors,
 * interpolation monotonicity, and clamping.
 */

#include <gtest/gtest.h>

#include "mem/migration_cost.hh"

namespace {

using hos::mem::MigrationCostModel;

TEST(MigrationCost, Table6AnchorsExact)
{
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageMoveUs(8 * 1024), 25.5);
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageMoveUs(64 * 1024), 15.7);
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageMoveUs(128 * 1024), 11.12);
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageWalkUs(8 * 1024), 43.21);
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageWalkUs(64 * 1024), 26.32);
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageWalkUs(128 * 1024), 10.25);
}

TEST(MigrationCost, PerPageCostShrinksWithBatch)
{
    double prev = 1e9;
    for (std::uint64_t batch = 1024; batch <= 256 * 1024; batch *= 2) {
        const double cost = MigrationCostModel::pageMoveUs(batch) +
                            MigrationCostModel::pageWalkUs(batch);
        EXPECT_LE(cost, prev) << "batch " << batch;
        prev = cost;
    }
}

TEST(MigrationCost, ClampsOutsideMeasuredRange)
{
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageMoveUs(1),
                     MigrationCostModel::pageMoveUs(8 * 1024));
    EXPECT_DOUBLE_EQ(MigrationCostModel::pageMoveUs(1 << 30),
                     MigrationCostModel::pageMoveUs(128 * 1024));
}

TEST(MigrationCost, BatchCostIsPagesTimesPerPage)
{
    const std::uint64_t batch = 8 * 1024;
    const double per_page_us = 25.5 + 43.21;
    const auto expect_ns = static_cast<hos::sim::Duration>(
        batch * per_page_us * 1000.0);
    EXPECT_NEAR(static_cast<double>(
                    MigrationCostModel::batchCost(batch)),
                static_cast<double>(expect_ns), 1e6);
    EXPECT_EQ(MigrationCostModel::batchCost(0), 0u);
}

} // namespace
