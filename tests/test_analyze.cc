/**
 * @file
 * hos-analyze rule liveness tests. Every rule must (a) fire on its
 * seeded-violation fixture and (b) go quiet when that one rule is
 * disabled — proving the finding came from the rule under test, not
 * a neighbor. Fixtures live in tests/analyze_fixtures/ and are lexed
 * under virtual repo paths because rules are path-scoped.
 */

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rules.hh"

namespace {

using namespace hos::analyze;

std::string
fixtureText(const std::string &name)
{
    const std::string path =
        std::string(HOS_ANALYZE_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Lex a fixture under a virtual repo path and run the analyzer. */
std::vector<Finding>
analyzeFixture(const std::string &name, const std::string &vpath,
               const std::set<std::string> &disabled = {})
{
    LexedFile f = lex(vpath, fixtureText(name));
    std::vector<LexedFile> files;
    files.push_back(f);
    const GlobalNames names = collectNames(files);
    Options opts;
    opts.disabled = disabled;
    return analyzeFile(f, names, opts);
}

bool
hasRule(const std::vector<Finding> &fs, const std::string &rule)
{
    return std::any_of(fs.begin(), fs.end(), [&](const Finding &f) {
        return f.rule == rule;
    });
}

struct Case {
    const char *fixture;
    const char *rule;
    const char *vpath;
};

const Case kCases[] = {
    {"bad_unordered_iter.cc", "unordered-iter", "src/fix.cc"},
    {"bad_ptr_key_ordered.cc", "ptr-key-ordered", "src/fix.cc"},
    {"bad_ptr_hash.cc", "ptr-hash", "src/fix.cc"},
    {"bad_raw_assert.cc", "raw-assert", "src/fix.cc"},
    {"bad_naked_new.cc", "naked-new", "src/fix.cc"},
    {"bad_wall_clock.cc", "wall-clock", "src/fix.cc"},
    {"bad_charge_span.cc", "charge-span", "src/fix.cc"},
    {"bad_tier_xray.cc", "tier-xray", "src/fix.cc"},
    {"bad_telemetry_purity.cc", "telemetry-purity", "src/fix.cc"},
    {"bad_xray_int.cc", "xray-int", "src/xray/fix.cc"},
    {"bad_metrics_purity.cc", "metrics-purity", "src/metrics/fix.cc"},
    {"bad_loose_hotness_key.cc", "loose-hotness-key", "tests/fix.cc"},
    {"bad_retired_api.cc", "retired-api", "src/fix.cc"},
    {"bad_soa_field_write.cc", "soa-field-write", "src/fix.cc"},
};

TEST(Analyze, CatalogHasFourteenRules)
{
    EXPECT_EQ(ruleIds().size(), 14u);
    // Every fixture case names a cataloged rule.
    for (const Case &c : kCases) {
        EXPECT_NE(std::find(ruleIds().begin(), ruleIds().end(),
                            std::string(c.rule)),
                  ruleIds().end())
            << c.rule;
    }
}

TEST(Analyze, EveryRuleFiresOnItsFixture)
{
    for (const Case &c : kCases) {
        const auto fs = analyzeFixture(c.fixture, c.vpath);
        EXPECT_TRUE(hasRule(fs, c.rule))
            << c.fixture << " did not trip " << c.rule;
        for (const Finding &f : fs) {
            EXPECT_EQ(f.file, c.vpath);
            EXPECT_GE(f.line, 1);
            EXPECT_FALSE(f.excerpt.empty());
            EXPECT_FALSE(f.message.empty());
        }
    }
}

TEST(Analyze, DisablingTheRuleSilencesItsFixture)
{
    // The liveness proof: with exactly the rule under test switched
    // off, its finding disappears. A rule whose check was dead code
    // would fail EveryRuleFiresOnItsFixture; a finding produced by a
    // *different* rule would fail here.
    for (const Case &c : kCases) {
        const auto fs = analyzeFixture(c.fixture, c.vpath, {c.rule});
        EXPECT_FALSE(hasRule(fs, c.rule))
            << c.fixture << " still trips " << c.rule
            << " with the rule disabled";
    }
}

TEST(Analyze, CleanFixtureIsQuiet)
{
    const auto fs = analyzeFixture("clean.cc", "src/clean.cc");
    for (const Finding &f : fs) {
        ADD_FAILURE() << f.rule << " fired on clean.cc:" << f.line
                      << ": " << f.excerpt;
    }
}

TEST(Analyze, SuppressionCommentsSilenceFindings)
{
    // suppressed.cc holds a real unordered-iter violation (silenced by
    // the preceding-line ordered-insensitive alias) and a real
    // raw-assert (silenced same-line).
    const auto fs = analyzeFixture("suppressed.cc", "src/fix.cc");
    for (const Finding &f : fs) {
        ADD_FAILURE() << f.rule << " fired despite suppression at line "
                      << f.line;
    }
}

TEST(Analyze, PathScopingConfinesRules)
{
    // xray-int only runs under src/xray/; loose-hotness-key only under
    // the harness trees (tests/bench/examples).
    const auto xf =
        analyzeFixture("bad_xray_int.cc", "src/guestos/fix.cc");
    EXPECT_FALSE(hasRule(xf, "xray-int"));
    // metrics-purity's float/double leg only fires under src/metrics;
    // the guard/observation-block legs still fire anywhere in src.
    const auto mf =
        analyzeFixture("bad_metrics_purity.cc", "src/guestos/fix.cc");
    for (const Finding &f : mf) {
        if (f.rule == "metrics-purity") {
            EXPECT_EQ(f.excerpt.find("double"), std::string::npos)
                << "float ban escaped src/metrics scoping";
        }
    }
    EXPECT_TRUE(hasRule(mf, "metrics-purity"));
    const auto lf =
        analyzeFixture("bad_loose_hotness_key.cc", "src/fix.cc");
    EXPECT_FALSE(hasRule(lf, "loose-hotness-key"));
}

TEST(Analyze, BaselineRoundTrip)
{
    const auto fs = analyzeFixture("bad_raw_assert.cc", "src/fix.cc");
    ASSERT_FALSE(fs.empty());
    // Serialize the way --write-baseline does, with decoration the
    // parser must ignore.
    std::ostringstream text;
    text << "# hos-analyze baseline\n\n";
    for (const Finding &f : fs)
        text << "  " << baselineKey(f) << "\t\n";
    const auto keys = parseBaseline(text.str());
    EXPECT_EQ(keys.size(), fs.size());
    for (const Finding &f : fs) {
        EXPECT_TRUE(keys.count(baselineKey(f)))
            << baselineKey(f) << " lost in round trip";
        // Keys carry no line numbers: edits above a grandfathered
        // finding must not invalidate the baseline.
        EXPECT_EQ(baselineKey(f).find(std::to_string(f.line) + ":"),
                  std::string::npos);
    }
}

TEST(Analyze, MultiRuleSuppressionListParses)
{
    const std::string src = "#include <cassert>\n"
                            "void f() {\n"
                            "    // hos-analyze: raw-assert, naked-new (both)\n"
                            "    int *p = new int(assert(1), 2);\n"
                            "}\n";
    LexedFile f = lex("src/fix.cc", src);
    const GlobalNames names;
    const auto fs = analyzeFile(f, names, Options{});
    EXPECT_FALSE(hasRule(fs, "raw-assert"));
    EXPECT_FALSE(hasRule(fs, "naked-new"));
}

} // namespace
