/**
 * @file
 * PerCpuPageLists: fast-path behavior, refill batching, high-
 * watermark draining, per-node separation, and accounting.
 */

#include <gtest/gtest.h>

#include "guestos/percpu_lists.hh"

namespace {

using namespace hos::guestos;

struct PerCpuFixture : ::testing::Test
{
    static constexpr std::uint64_t span = 1 << 12;
    PageArray pages{2 * span};
    NumaNode fast{0, hos::mem::MemType::FastMem, pages, 0, span};
    NumaNode slow{1, hos::mem::MemType::SlowMem, pages, span, span};
    PerCpuPageLists pcp{pages, 4, 2};

    void
    SetUp() override
    {
        fast.primaryZone().buddy().addFreeRange(0, span);
        slow.primaryZone().buddy().addFreeRange(span, span);
    }
};

TEST_F(PerCpuFixture, FirstAllocRefillsBatch)
{
    const Gpfn pfn = pcp.alloc(0, fast);
    ASSERT_NE(pfn, invalidGpfn);
    EXPECT_TRUE(pages.page(pfn).allocated());
    EXPECT_EQ(pcp.refills(), 1u);
    EXPECT_GT(pcp.cached(0, 0), 0u);
}

TEST_F(PerCpuFixture, SecondAllocHitsCache)
{
    pcp.alloc(0, fast);
    const auto hits_before = pcp.fastPathHits();
    pcp.alloc(0, fast);
    EXPECT_EQ(pcp.fastPathHits(), hits_before + 1);
}

TEST_F(PerCpuFixture, NodesAreSeparated)
{
    const Gpfn f = pcp.alloc(0, fast);
    const Gpfn s = pcp.alloc(0, slow);
    EXPECT_TRUE(fast.containsGpfn(f));
    EXPECT_TRUE(slow.containsGpfn(s));
    EXPECT_GT(pcp.cached(0, 0), 0u);
    EXPECT_GT(pcp.cached(0, 1), 0u);
}

TEST_F(PerCpuFixture, FreeGoesToCacheAndDrainsAboveHigh)
{
    std::vector<Gpfn> held;
    for (int i = 0; i < 200; ++i)
        held.push_back(pcp.alloc(1, fast));
    for (Gpfn pfn : held)
        pcp.free(1, fast, pfn);
    // The high watermark bounds the cache; the rest went to the buddy.
    EXPECT_LE(pcp.cached(1, 0), 96u);
}

TEST_F(PerCpuFixture, DrainNodeReturnsEverything)
{
    for (unsigned cpu = 0; cpu < 4; ++cpu)
        pcp.alloc(cpu, fast);
    const std::uint64_t buddy_free = fast.freePages();
    pcp.drainNode(fast);
    EXPECT_EQ(pcp.cachedOnNode(0), 0u);
    EXPECT_GT(fast.freePages(), buddy_free);
    // Accounting: allocated 4 pages total, rest back in the buddy.
    EXPECT_EQ(fast.freePages(), span - 4);
}

TEST_F(PerCpuFixture, ExhaustionPropagates)
{
    std::uint64_t got = 0;
    while (pcp.alloc(0, fast) != invalidGpfn)
        ++got;
    EXPECT_EQ(got, span);
}

TEST_F(PerCpuFixture, CachedOnNodeSumsCpus)
{
    pcp.alloc(0, fast);
    pcp.alloc(1, fast);
    EXPECT_EQ(pcp.cachedOnNode(0),
              pcp.cached(0, 0) + pcp.cached(1, 0) + pcp.cached(2, 0) +
                  pcp.cached(3, 0));
}

} // namespace
