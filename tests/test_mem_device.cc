/**
 * @file
 * MemDevice service model: monotonicity in latency/bandwidth factors,
 * MLP overlap, sharer penalties, and the Table 3 throttle points.
 * Parameterized across throttle configurations as a property sweep.
 */

#include <gtest/gtest.h>

#include "mem/mem_device.hh"

namespace {

using namespace hos::mem;

AccessBatch
batch(std::uint64_t loads, std::uint64_t stores, double mlp)
{
    AccessBatch b;
    b.loads = loads;
    b.stores = stores;
    b.bytes = (loads + stores) * 64;
    b.mlp = mlp;
    return b;
}

TEST(MemDevice, LatencyBoundScalesWithLatencyFactor)
{
    MemDevice d1(throttledSpec(1, 1, gib));
    MemDevice d5(throttledSpec(5, 1, gib));
    const auto b = batch(100000, 0, 1.0);
    const auto t1 = d1.service(b);
    const auto t5 = d5.service(b);
    EXPECT_NEAR(static_cast<double>(t5) / static_cast<double>(t1), 5.0,
                0.5);
}

TEST(MemDevice, BandwidthBoundScalesWithBwFactor)
{
    MemDevice d1(throttledSpec(1, 1, gib));
    MemDevice d12(throttledSpec(1, 12, gib));
    // Huge MLP: the latency term vanishes, bandwidth dominates.
    const auto b = batch(1000000, 0, 1000.0);
    const auto t1 = d1.service(b);
    const auto t12 = d12.service(b);
    EXPECT_NEAR(static_cast<double>(t12) / static_cast<double>(t1), 12.0,
                1.5);
}

TEST(MemDevice, MlpHidesLatency)
{
    MemDevice d(dramSpec(gib));
    const auto t1 = d.service(batch(10000, 0, 1.0));
    const auto t8 = d.service(batch(10000, 0, 8.0));
    EXPECT_GT(t1, t8 * 4);
}

TEST(MemDevice, SharersSplitBandwidth)
{
    MemDevice d(dramSpec(gib));
    const auto b = batch(1000000, 0, 1000.0);
    const auto t1 = d.service(b, 1);
    const auto t2 = d.service(b, 2);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(static_cast<double>(t2) / static_cast<double>(t1), 2.0,
                0.4);
}

TEST(MemDevice, StoresCostMoreOnAsymmetricTiers)
{
    MemDevice nvm(nvmSpec(gib));
    const auto tl = nvm.service(batch(10000, 0, 1.0));
    const auto ts = nvm.service(batch(0, 10000, 1.0));
    // PCM stores are 3x the load latency (450 vs 150 ns).
    EXPECT_NEAR(static_cast<double>(ts) / static_cast<double>(tl), 3.0,
                0.3);
}

TEST(MemDevice, StatsAccumulate)
{
    MemDevice d(dramSpec(gib));
    d.service(batch(10, 5, 1.0));
    EXPECT_EQ(d.totalLoads(), 10u);
    EXPECT_EQ(d.totalStores(), 5u);
    EXPECT_EQ(d.totalBytes(), 15u * 64u);
    d.resetStats();
    EXPECT_EQ(d.totalLoads(), 0u);
}

TEST(MemDevice, LoadedLatencyGrowsWithUtilization)
{
    MemDevice d(dramSpec(gib));
    EXPECT_LT(d.loadedLatencyNs(0.1), d.loadedLatencyNs(0.9));
    EXPECT_GE(d.loadedLatencyNs(0.0), d.spec().load_latency_ns);
}

/** Property sweep over the Table 3 throttle grid. */
class ThrottleSweep
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(ThrottleSweep, ServiceTimeMonotonicInThrottle)
{
    const auto [lat, bw] = GetParam();
    MemDevice base(dramSpec(gib));
    MemDevice throttled(throttledSpec(lat, bw, gib));
    for (double mlp : {1.0, 4.0, 16.0}) {
        const auto b = batch(50000, 10000, mlp);
        EXPECT_GE(throttled.service(b), base.service(b))
            << "L:" << lat << " B:" << bw << " mlp " << mlp;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table3Grid, ThrottleSweep,
    ::testing::Values(std::make_tuple(2.0, 2.0), std::make_tuple(5.0, 5.0),
                      std::make_tuple(5.0, 7.0), std::make_tuple(5.0, 9.0),
                      std::make_tuple(5.0, 12.0),
                      std::make_tuple(1.6, 1.5)));

} // namespace
