/**
 * @file
 * SlabAllocator: cache creation, object packing, partial-slab reuse,
 * page return on emptying, and multi-cache isolation.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

struct SlabFixture : ::testing::Test
{
    std::unique_ptr<GuestKernel> kernel = test::standaloneGuest();
    SlabAllocator *slab = nullptr;

    void
    SetUp() override
    {
        slab = &kernel->slab();
    }
};

TEST_F(SlabFixture, ObjectsPackIntoPages)
{
    const auto c = slab->createCache("obj512", 512);
    EXPECT_EQ(slab->objectsPerPage(c), 8u);
    std::vector<SlabObject> objs;
    for (int i = 0; i < 8; ++i) {
        auto o = slab->alloc(c);
        ASSERT_TRUE(o.valid());
        objs.push_back(o);
    }
    EXPECT_EQ(slab->pagesInUse(c), 1u) << "8 objects fit one page";
    EXPECT_EQ(objs[0].pfn, objs[7].pfn);
    auto ninth = slab->alloc(c);
    EXPECT_EQ(slab->pagesInUse(c), 2u);
    slab->free(c, ninth);
    for (auto o : objs)
        slab->free(c, o);
    EXPECT_EQ(slab->pagesInUse(c), 0u);
    EXPECT_EQ(slab->objectsInUse(c), 0u);
}

TEST_F(SlabFixture, EmptySlabPageReturnsToKernel)
{
    const auto c = slab->createCache("obj2048", 2048);
    auto a = slab->alloc(c);
    auto b = slab->alloc(c);
    ASSERT_EQ(a.pfn, b.pfn);
    EXPECT_TRUE(kernel->pageMeta(a.pfn).allocated());
    slab->free(c, a);
    EXPECT_TRUE(kernel->pageMeta(b.pfn).allocated());
    slab->free(c, b);
    EXPECT_FALSE(kernel->pageMeta(b.pfn).allocated())
        << "empty slab page freed";
}

TEST_F(SlabFixture, PartialSlabsAreReused)
{
    const auto c = slab->createCache("obj1024", 1024);
    auto a = slab->alloc(c);
    auto b = slab->alloc(c);
    slab->free(c, a);
    auto d = slab->alloc(c);
    EXPECT_EQ(d.pfn, b.pfn) << "hole in the partial slab reused";
    EXPECT_EQ(slab->pagesInUse(c), 1u);
}

TEST_F(SlabFixture, CachesAreIsolated)
{
    const auto c1 = slab->createCache("dentry", 192);
    const auto c2 =
        slab->createCache("skbuff", 2048, PageType::NetBuf);
    auto o1 = slab->alloc(c1);
    auto o2 = slab->alloc(c2);
    EXPECT_NE(o1.pfn, o2.pfn);
    EXPECT_EQ(kernel->pageMeta(o1.pfn).type(), PageType::Slab);
    EXPECT_EQ(kernel->pageMeta(o2.pfn).type(), PageType::NetBuf);
    EXPECT_EQ(slab->cacheName(c1), "dentry");
}

TEST_F(SlabFixture, SlabPagesAreUnevictable)
{
    const auto c = slab->createCache("pinned", 256);
    auto o = slab->alloc(c);
    EXPECT_TRUE(kernel->pageMeta(o.pfn).unevictable());
    slab->free(c, o);
    EXPECT_FALSE(kernel->pageMeta(o.pfn).unevictable());
}

TEST_F(SlabFixture, WrongCacheFreePanics)
{
    const auto c1 = slab->createCache("a", 256);
    const auto c2 = slab->createCache("b", 256);
    auto o = slab->alloc(c1);
    EXPECT_DEATH(slab->free(c2, o), "wrong cache|unknown slab");
    slab->free(c1, o);
}

TEST_F(SlabFixture, ChurnStressKeepsAccounting)
{
    const auto c = slab->createCache("churn", 300);
    sim::Rng rng(5);
    std::vector<SlabObject> held;
    for (int step = 0; step < 20000; ++step) {
        if (held.empty() || rng.chance(0.52)) {
            auto o = slab->alloc(c);
            if (o.valid())
                held.push_back(o);
        } else {
            const auto idx = rng.uniformInt(held.size());
            slab->free(c, held[idx]);
            held[idx] = held.back();
            held.pop_back();
        }
    }
    EXPECT_EQ(slab->objectsInUse(c), held.size());
    for (auto o : held)
        slab->free(c, o);
    EXPECT_EQ(slab->pagesInUse(c), 0u);
}

} // namespace
