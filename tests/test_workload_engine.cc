/**
 * @file
 * Workload-engine internals: region growth/release mechanics, the
 * drifting skewed hot window, stale-gpfn refresh after migration,
 * placement-aware I/O charging, and the skbuff pool.
 */

#include <gtest/gtest.h>

#include "core/hetero_system.hh"
#include "policy/hetero_lru_policy.hh"
#include "workload/workload.hh"

namespace {

using namespace hos;
using namespace hos::workload;

/** A minimal workload exposing the protected engine helpers. */
class EngineProbe final : public Workload
{
  public:
    explicit EngineProbe(VmEnv env) : Workload(std::move(env), "probe")
    {
    }

    Region heap;
    std::vector<guestos::Gpfn> io_pages;
    guestos::FileId file = guestos::noFile;

    using Workload::accessRegion;
    using Workload::growRegion;
    using Workload::ioRead;
    using Workload::netRequestBatch;
    using Workload::regionPage;
    using Workload::releaseRegion;
    using Workload::sampleFastFraction;

  protected:
    void
    setup() override
    {
        heap = makeAnonRegion("probe-heap", 8 * mem::mib, 4 * mem::mib,
                              0.2, 4.0, 0.3);
        growRegion(heap, 8 * mem::mib);
        file = makeFile(4 * mem::mib);
    }

    bool
    phase(std::uint64_t idx) override
    {
        accessRegion(heap, 100000);
        chargeCpu(sim::milliseconds(1));
        return idx + 1 < 2;
    }
};

struct WorkloadEngineFixture : ::testing::Test
{
    core::HostConfig host;
    std::unique_ptr<core::HeteroSystem> sys;
    core::HeteroSystem::VmSlot *slot = nullptr;
    std::unique_ptr<EngineProbe> wl;

    void
    SetUp() override
    {
        host.fast = mem::dramSpec(16 * mem::mib);
        host.slow = mem::defaultSlowMemSpec(64 * mem::mib);
        sys = std::make_unique<core::HeteroSystem>(host);
        slot = &sys->addVm(
            std::make_unique<policy::HeteroLruPolicy>(),
            core::GuestSizing{});
        wl = std::make_unique<EngineProbe>(sys->envFor(*slot));
        wl->start();
    }
};

TEST_F(WorkloadEngineFixture, GrowRegionFaultsRealPages)
{
    EXPECT_EQ(wl->heap.pages.size(),
              (8 * mem::mib) / mem::pageSize);
    auto &k = *slot->kernel;
    for (guestos::Gpfn pfn : wl->heap.pages)
        EXPECT_TRUE(k.pageMeta(pfn).allocated());
}

TEST_F(WorkloadEngineFixture, AccessRegionMarksHotWindow)
{
    wl->accessRegion(wl->heap, 100000);
    auto &k = *slot->kernel;
    std::uint64_t accessed = 0;
    for (guestos::Gpfn pfn : wl->heap.pages)
        accessed += k.pageMeta(pfn).pte_accessed() ? 1 : 0;
    // The window covers wss = half the region; the very hot core is
    // always marked, the rest probabilistically.
    EXPECT_GT(accessed, wl->heap.wss_pages / 3);
    EXPECT_LE(accessed, wl->heap.wss_pages + 1);
}

TEST_F(WorkloadEngineFixture, WindowDriftsAcrossPhases)
{
    const auto start0 = wl->heap.window_start;
    for (int i = 0; i < 60; ++i)
        wl->accessRegion(wl->heap, 1000);
    EXPECT_NE(wl->heap.window_start, start0)
        << "hot sets drift with application phases";
    EXPECT_LT(wl->heap.window_start, wl->heap.pages.size());
}

TEST_F(WorkloadEngineFixture, RegionPageRefreshesAfterDemotion)
{
    auto &k = *slot->kernel;
    // Find a FastMem page of the region and demote it behind the
    // workload's back.
    std::size_t idx = 0;
    guestos::Gpfn victim = guestos::invalidGpfn;
    for (std::size_t i = 0; i < wl->heap.pages.size(); ++i) {
        const auto p = k.pageMeta(wl->heap.pages[i]);
        if (p.mem_type() == mem::MemType::FastMem) {
            idx = i;
            victim = wl->heap.pages[i];
            break;
        }
    }
    ASSERT_NE(victim, guestos::invalidGpfn);
    k.pageMeta(victim).setLastTouch(1);
    k.events().runUntil(sim::milliseconds(1)); // leave boot time
    ASSERT_EQ(k.heteroLru().demotePage(victim), 1u);

    const guestos::Gpfn current = wl->regionPage(wl->heap, idx);
    EXPECT_NE(current, victim) << "stale gpfn was refreshed";
    EXPECT_EQ(k.pageMeta(current).mem_type(), mem::MemType::SlowMem);
    EXPECT_EQ(wl->heap.pages[idx], current) << "cache updated in place";
}

TEST_F(WorkloadEngineFixture, SampleFastFractionTracksPlacement)
{
    const double f = wl->sampleFastFraction(wl->heap);
    // 16 MiB fast node, 8 MiB region allocated fast-first: the hot
    // window should be overwhelmingly fast.
    EXPECT_GT(f, 0.8);
}

TEST_F(WorkloadEngineFixture, ReleaseRegionReturnsMemory)
{
    auto &k = *slot->kernel;
    auto *fast = k.nodeFor(mem::MemType::FastMem);
    const auto free_before = k.effectiveFreePages(*fast);
    wl->releaseRegion(wl->heap);
    EXPECT_TRUE(wl->heap.pages.empty());
    EXPECT_GT(k.effectiveFreePages(*fast), free_before);
}

TEST_F(WorkloadEngineFixture, IoReadChargesAndReturnsPages)
{
    const auto before = wl->elapsed();
    auto pages = wl->ioRead(wl->file, 0, 64 * mem::kib);
    EXPECT_GE(pages.size(), 16u);
    // I/O wait and copy traffic are charged at phase end; run one.
    wl->step();
    EXPECT_GT(wl->elapsed(), before);
}

TEST_F(WorkloadEngineFixture, SkbuffPoolPersistsAcrossBatches)
{
    auto &k = *slot->kernel;
    wl->netRequestBatch(8000, 1024);
    const auto pages_after_first = k.slab().totalPagesInUse();
    EXPECT_GT(pages_after_first, 0u);
    const auto allocs_after_first =
        k.allocCount(guestos::PageType::NetBuf);
    wl->netRequestBatch(8000, 1024);
    // The pool persists: the second batch churns only a fraction.
    const auto alloc_delta =
        k.allocCount(guestos::PageType::NetBuf) - allocs_after_first;
    EXPECT_LT(alloc_delta, allocs_after_first);
}

} // namespace
