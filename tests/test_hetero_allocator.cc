/**
 * @file
 * HeteroAllocator: placement by mode, on-demand eligibility, miss
 * accounting, demand windows, hints, and fallback.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

Gpfn
allocOf(GuestKernel &k, PageType t, MemHint hint = MemHint::None)
{
    AllocRequest req;
    req.type = t;
    req.hint = hint;
    return k.allocPage(req);
}

TEST(HeteroAllocator, SlowOnlyNeverTouchesFast)
{
    auto k = test::standaloneGuest(64 * mem::mib, 128 * mem::mib,
                                   [] {
                                       AllocConfig c;
                                       c.mode = AllocMode::SlowOnly;
                                       return c;
                                   }(),
                                   false);
    for (int i = 0; i < 1000; ++i) {
        const Gpfn pfn = allocOf(*k, PageType::Anon);
        ASSERT_NE(pfn, invalidGpfn);
        EXPECT_EQ(k->pageMeta(pfn).mem_type(), mem::MemType::SlowMem);
    }
}

TEST(HeteroAllocator, FastPreferredFillsFastThenSpills)
{
    AllocConfig c;
    c.mode = AllocMode::FastPreferred;
    auto k = test::standaloneGuest(4 * mem::mib, 64 * mem::mib, c, false);
    std::uint64_t fast = 0, slow = 0;
    for (int i = 0; i < 3000; ++i) {
        const Gpfn pfn = allocOf(*k, PageType::Anon);
        ASSERT_NE(pfn, invalidGpfn);
        (k->pageMeta(pfn).mem_type() == mem::MemType::FastMem ? fast
                                                            : slow)++;
    }
    EXPECT_GT(fast, 900u) << "the 1024-page fast node fills first";
    EXPECT_GT(slow, 0u) << "then the allocator spills";
}

TEST(HeteroAllocator, OnDemandEligibilityGates)
{
    auto k = test::standaloneGuest(64 * mem::mib, 128 * mem::mib,
                                   heapOdConfig(), false);
    const Gpfn heap = allocOf(*k, PageType::Anon);
    const Gpfn cache = allocOf(*k, PageType::PageCache);
    EXPECT_EQ(k->pageMeta(heap).mem_type(), mem::MemType::FastMem);
    EXPECT_EQ(k->pageMeta(cache).mem_type(), mem::MemType::SlowMem)
        << "Heap-OD sends ineligible types to SlowMem";
    k->freePage(heap);
    k->freePage(cache);
}

TEST(HeteroAllocator, HeapIoSlabOdAdmitsIoTypes)
{
    auto k = test::standaloneGuest(64 * mem::mib, 128 * mem::mib,
                                   heapIoSlabOdConfig(), false);
    for (PageType t : {PageType::Anon, PageType::PageCache,
                       PageType::BufferCache, PageType::Slab,
                       PageType::NetBuf}) {
        const Gpfn pfn = allocOf(*k, t);
        ASSERT_NE(pfn, invalidGpfn);
        EXPECT_EQ(k->pageMeta(pfn).mem_type(), mem::MemType::FastMem)
            << pageTypeName(t);
        k->freePage(pfn);
    }
}

TEST(HeteroAllocator, MissAccountingAndRatio)
{
    AllocConfig c;
    c.mode = AllocMode::SlowOnly;
    auto k = test::standaloneGuest(16 * mem::mib, 64 * mem::mib, c,
                                   false);
    for (int i = 0; i < 100; ++i)
        allocOf(*k, PageType::Anon);
    auto &alloc = k->allocator();
    EXPECT_EQ(alloc.totalRequests(), 100u + k->pageTablePages());
    EXPECT_DOUBLE_EQ(alloc.overallFastMissRatio(), 1.0);
}

TEST(HeteroAllocator, DemandWindowRotation)
{
    AllocConfig c;
    c.mode = AllocMode::SlowOnly;
    auto k = test::standaloneGuest(16 * mem::mib, 64 * mem::mib, c,
                                   false);
    for (int i = 0; i < 50; ++i)
        allocOf(*k, PageType::Anon);
    auto &alloc = k->allocator();
    EXPECT_GT(alloc.windowMissRatio(PageType::Anon), 0.9);
    alloc.rotateEpoch();
    // Previous window still blends in.
    EXPECT_GT(alloc.windowMissRatio(PageType::Anon), 0.9);
    alloc.rotateEpoch();
    alloc.rotateEpoch();
    EXPECT_DOUBLE_EQ(alloc.windowMissRatio(PageType::Anon), 0.0);
}

TEST(HeteroAllocator, HintsOverridePolicy)
{
    AllocConfig c;
    c.mode = AllocMode::SlowOnly; // policy says slow...
    auto k = test::standaloneGuest(16 * mem::mib, 64 * mem::mib, c,
                                   false);
    const Gpfn pfn = allocOf(*k, PageType::Anon, MemHint::FastMem);
    EXPECT_EQ(k->pageMeta(pfn).mem_type(), mem::MemType::FastMem)
        << "...but the explicit mmap flag wins";
}

TEST(HeteroAllocator, ExhaustionFallsBackAcrossNodes)
{
    AllocConfig c;
    c.mode = AllocMode::FastPreferred;
    auto k = test::standaloneGuest(mem::mib, 2 * mem::mib, c, false);
    std::uint64_t total = 0;
    while (allocOf(*k, PageType::Anon) != invalidGpfn)
        ++total;
    // Both nodes exhausted: 768 pages minus page-table overhead.
    EXPECT_GT(total, 700u);
    EXPECT_EQ(allocOf(*k, PageType::Anon), invalidGpfn);
}

TEST(HeteroAllocator, PerTypeAllocationCounts)
{
    auto k = test::standaloneGuest();
    allocOf(*k, PageType::Anon);
    allocOf(*k, PageType::Anon);
    allocOf(*k, PageType::NetBuf);
    EXPECT_EQ(k->allocCount(PageType::Anon), 2u);
    EXPECT_EQ(k->allocCount(PageType::NetBuf), 1u);
    EXPECT_EQ(k->allocCount(PageType::Dma), 0u);
}

} // namespace
