/**
 * @file
 * Stats framework: counters, gauges, distributions, histograms,
 * stat groups, and the table printer.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "sim/table.hh"

namespace {

using namespace hos::sim;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, MovesBothWays)
{
    Gauge g;
    g.add(10);
    g.sub(3);
    EXPECT_EQ(g.value(), 7);
    g.sub(10);
    EXPECT_EQ(g.value(), -3);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(-1.0);  // clamps into bucket 0
    h.sample(100.0); // clamps into the last bucket
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(9), 2u);
    EXPECT_DOUBLE_EQ(h.bucketLo(5), 5.0);
}

TEST(StatGroup, NamedAccessAndDump)
{
    StatGroup g("guest0");
    g.counter("alloc").inc(3);
    g.gauge("resident").set(5);
    EXPECT_TRUE(g.hasCounter("alloc"));
    EXPECT_FALSE(g.hasCounter("nope"));
    EXPECT_EQ(g.findCounter("alloc").value(), 3u);
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("guest0.alloc 3"), std::string::npos);
    g.resetAll();
    EXPECT_EQ(g.findCounter("alloc").value(), 0u);
}

TEST(StatGroup, HistogramRegistrationIsIdempotent)
{
    StatGroup g("hist");
    Histogram &h = g.histogram("lat", 0.0, 100.0, 10);
    h.sample(5.0);
    // A second fetch must return the same histogram regardless of the
    // (ignored) shape parameters.
    Histogram &again = g.histogram("lat", 0.0, 1.0, 2);
    EXPECT_EQ(&h, &again);
    EXPECT_EQ(again.samples(), 1u);
    EXPECT_EQ(again.buckets(), 10u);
}

TEST(StatGroup, FindMirrorsEveryKind)
{
    StatGroup g("all");
    g.counter("c").inc(1);
    g.gauge("g").set(-4);
    g.distribution("d").sample(2.5);
    g.histogram("h", 0.0, 10.0, 5).sample(3.0);

    EXPECT_EQ(g.findGauge("g").value(), -4);
    EXPECT_EQ(g.findDistribution("d").count(), 1u);
    EXPECT_EQ(g.findHistogram("h").samples(), 1u);
    EXPECT_TRUE(g.hasGauge("g"));
    EXPECT_TRUE(g.hasDistribution("d"));
    EXPECT_TRUE(g.hasHistogram("h"));
    EXPECT_FALSE(g.hasGauge("c"));
    EXPECT_FALSE(g.hasDistribution("nope"));
    EXPECT_FALSE(g.hasHistogram("nope"));
}

TEST(StatGroup, DumpCoversAllKinds)
{
    StatGroup g("grp");
    g.counter("c").inc(2);
    g.gauge("res").set(7);
    g.distribution("d").sample(4.0);
    g.histogram("h", 0.0, 10.0, 2).sample(9.0);

    const std::string dump = g.dump();
    EXPECT_NE(dump.find("grp.c 2"), std::string::npos);
    EXPECT_NE(dump.find("grp.res 7"), std::string::npos);
    EXPECT_NE(dump.find("grp.d.mean 4"), std::string::npos);
    EXPECT_NE(dump.find("grp.h.samples 1"), std::string::npos);
    EXPECT_NE(dump.find("grp.h.bucket1 1"), std::string::npos);
}

TEST(StatGroup, ResetAllCoversAllKinds)
{
    StatGroup g("grp");
    g.counter("c").inc(2);
    g.gauge("res").set(7);
    g.distribution("d").sample(4.0);
    g.histogram("h", 0.0, 10.0, 2).sample(9.0);

    g.resetAll();
    EXPECT_EQ(g.findCounter("c").value(), 0u);
    EXPECT_EQ(g.findGauge("res").value(), 0);
    EXPECT_EQ(g.findDistribution("d").count(), 0u);
    EXPECT_EQ(g.findHistogram("h").samples(), 0u);
    EXPECT_EQ(g.findHistogram("h").bucketCount(1), 0u);
}

TEST(StatGroup, ForEachScalarFlattens)
{
    StatGroup g("f");
    g.counter("c").inc(3);
    g.distribution("d").sample(1.0);
    g.distribution("d").sample(3.0);

    std::map<std::string, double> seen;
    g.forEachScalar(
        [&](const std::string &name, double v) { seen[name] = v; });
    EXPECT_EQ(seen.at("c"), 3.0);
    EXPECT_EQ(seen.at("d.count"), 2.0);
    EXPECT_EQ(seen.at("d.mean"), 2.0);
    EXPECT_EQ(seen.at("d.min"), 1.0);
    EXPECT_EQ(seen.at("d.max"), 3.0);
}

TEST(Table, RendersAlignedRows)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"a", Table::num(std::uint64_t(1))});
    t.row({"long-name", Table::pct(12.345)});
    const std::string s = t.render();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("12.3%"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(std::uint64_t(42)), "42");
    EXPECT_EQ(Table::pct(50.0, 0), "50%");
}

} // namespace
