/**
 * @file
 * Zones and NUMA nodes: the HeteroOS single-unified-zone rule for
 * FastMem, the DMA+Normal split for SlowMem, watermark scaling, and
 * node-level allocation routing.
 */

#include <gtest/gtest.h>

#include "guestos/numa.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

TEST(Zone, WatermarksScaleWithManagedPages)
{
    PageArray pages(1 << 16);
    Zone small(pages, ZoneKind::Unified, 0, 1 << 12);
    Zone large(pages, ZoneKind::Unified, 1 << 12, 1 << 15);
    small.buddy().addFreeRange(0, 1 << 12);
    large.buddy().addFreeRange(1 << 12, 1 << 15);
    small.updateWatermarks();
    large.updateWatermarks();
    EXPECT_LT(small.watermarkLow(), large.watermarkLow());
    EXPECT_LT(small.watermarkMin(), small.watermarkLow());
    EXPECT_LT(small.watermarkLow(), small.watermarkHigh());
}

TEST(Zone, PressurePredicates)
{
    PageArray pages(4096);
    Zone z(pages, ZoneKind::Unified, 0, 4096);
    z.buddy().addFreeRange(0, 4096);
    z.updateWatermarks();
    EXPECT_FALSE(z.belowLow());
    // Drain nearly everything.
    while (z.freePages() > z.watermarkMin() / 2)
        z.buddy().alloc(0);
    EXPECT_TRUE(z.belowMin());
    EXPECT_TRUE(z.belowLow());
    EXPECT_TRUE(z.belowHigh());
}

TEST(NumaNode, FastMemGetsOneUnifiedZone)
{
    PageArray pages(1 << 16);
    NumaNode fast(0, mem::MemType::FastMem, pages, 0, 1 << 16);
    ASSERT_EQ(fast.numZones(), 1u);
    EXPECT_EQ(fast.zone(0).kind(), ZoneKind::Unified);
}

TEST(NumaNode, SlowMemGetsDmaPlusNormal)
{
    // 64 MiB SlowMem node: 16 MiB DMA + 48 MiB Normal.
    const std::uint64_t span = (64 * mem::mib) / mem::pageSize;
    PageArray pages(span);
    NumaNode slow(0, mem::MemType::SlowMem, pages, 0, span);
    ASSERT_EQ(slow.numZones(), 2u);
    EXPECT_EQ(slow.zone(0).kind(), ZoneKind::Dma);
    EXPECT_EQ(slow.zone(1).kind(), ZoneKind::Normal);
    EXPECT_EQ(slow.zone(0).spanPages(),
              (16 * mem::mib) / mem::pageSize);
    EXPECT_EQ(&slow.primaryZone(), &slow.zone(1));
}

TEST(NumaNode, TinySlowMemSkipsDmaSplit)
{
    const std::uint64_t span = (8 * mem::mib) / mem::pageSize;
    PageArray pages(span);
    NumaNode slow(0, mem::MemType::SlowMem, pages, 0, span);
    EXPECT_EQ(slow.numZones(), 1u);
    EXPECT_EQ(slow.zone(0).kind(), ZoneKind::Normal);
}

TEST(NumaNode, AllocationPrefersPrimaryZone)
{
    const std::uint64_t span = (64 * mem::mib) / mem::pageSize;
    PageArray pages(span);
    NumaNode slow(0, mem::MemType::SlowMem, pages, 0, span);
    for (std::size_t zi = 0; zi < slow.numZones(); ++zi) {
        auto &z = slow.zone(zi);
        z.buddy().addFreeRange(z.base(), z.spanPages());
    }
    const Gpfn pfn = slow.allocBlock(0);
    EXPECT_TRUE(slow.primaryZone().containsGpfn(pfn))
        << "DMA zone is spared until Normal runs dry";

    // Drain Normal; allocation falls through to DMA.
    while (slow.primaryZone().freePages() > 0)
        slow.primaryZone().buddy().alloc(0);
    const Gpfn dma = slow.allocBlock(0);
    ASSERT_NE(dma, invalidGpfn);
    EXPECT_TRUE(slow.zone(0).containsGpfn(dma));
}

TEST(NumaNode, ZoneOfRoutesByGpfn)
{
    const std::uint64_t span = (64 * mem::mib) / mem::pageSize;
    PageArray pages(span);
    NumaNode slow(0, mem::MemType::SlowMem, pages, 0, span);
    EXPECT_EQ(slow.zoneOf(0).kind(), ZoneKind::Dma);
    EXPECT_EQ(slow.zoneOf(span - 1).kind(), ZoneKind::Normal);
    EXPECT_TRUE(slow.containsGpfn(span - 1));
    EXPECT_FALSE(slow.containsGpfn(span));
}

TEST(NumaNode, FreeBlockReturnsToOwningZone)
{
    const std::uint64_t span = (64 * mem::mib) / mem::pageSize;
    PageArray pages(span);
    NumaNode slow(0, mem::MemType::SlowMem, pages, 0, span);
    for (std::size_t zi = 0; zi < slow.numZones(); ++zi) {
        auto &z = slow.zone(zi);
        z.buddy().addFreeRange(z.base(), z.spanPages());
    }
    const auto free_before = slow.freePages();
    const Gpfn pfn = slow.allocBlock(3);
    EXPECT_EQ(slow.freePages(), free_before - 8);
    slow.freeBlock(pfn, 3);
    EXPECT_EQ(slow.freePages(), free_before);
}

} // namespace
