/**
 * @file
 * EventQueue: ordering, FIFO ties, periodic self-adaptive events.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using namespace hos::sim;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&] { fired.push_back(3); });
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(20, [&] { fired.push_back(2); });
    q.runUntil(25);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 25u);
    q.runUntil(100);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&fired, i] { fired.push_back(i); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] {
        ++count;
        q.scheduleAfter(5, [&] { ++count; });
    });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PeriodicRunsAtPeriod)
{
    EventQueue q;
    int fires = 0;
    q.schedulePeriodic(10, [&](Duration p) {
        ++fires;
        return p;
    });
    q.runUntil(100);
    EXPECT_EQ(fires, 10);
}

TEST(EventQueue, PeriodicCanAdaptAndStop)
{
    EventQueue q;
    std::vector<Tick> at;
    q.schedulePeriodic(10, [&](Duration p) -> Duration {
        at.push_back(q.now());
        if (at.size() == 1)
            return p * 2; // slow down
        if (at.size() == 2)
            return 0; // stop
        return p;
    });
    q.runUntil(1000);
    ASSERT_EQ(at.size(), 2u);
    EXPECT_EQ(at[0], 10u);
    EXPECT_EQ(at[1], 30u);
}

TEST(EventQueue, CoarseEventOutranksLaterFineEvent)
{
    // An event filed while the clock was far away lands in a coarse
    // wheel level. After the clock advances into its block, a newer
    // event filed at fine granularity must not shadow it.
    EventQueue q;
    std::vector<Tick> fired;
    q.runUntil(100);
    q.schedule(4100, [&] { fired.push_back(4100); }); // coarse level
    q.runUntil(4097); // enter the 4096-block without dispatching
    q.schedule(4200, [&] { fired.push_back(4200); }); // fine level
    q.runUntil(5000);
    EXPECT_EQ(fired, (std::vector<Tick>{4100, 4200}));
}

TEST(EventQueue, FarJumpsAcrossLevels)
{
    EventQueue q;
    std::vector<Tick> fired;
    const std::vector<Tick> when = {20000000, 1, 300000, 70, 5000};
    for (Tick w : when)
        q.schedule(w, [&fired, w] { fired.push_back(w); });
    q.runUntil(30000000);
    EXPECT_EQ(fired, (std::vector<Tick>{1, 70, 5000, 300000, 20000000}));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.now(), 30000000u);
}

TEST(EventQueue, FarJumpWithPeriodicKeepsWhenSeqOrder)
{
    // A sampling daemon (periodic, fine cadence) coexists with
    // one-shot events filed across several wheel levels, and the
    // clock jumps far past all of them in a single runUntil — the
    // cascade path that redistributes coarse blocks while a periodic
    // event keeps refiling itself. Dispatch must stay in strict
    // (when, seq) order: every firing time non-decreasing, the
    // periodic hitting every multiple of its period exactly once, and
    // one-shots landing at their scheduled ticks relative to the
    // periodic stream.
    EventQueue q;
    std::vector<std::pair<Tick, int>> fired; // (when, source id)
    q.schedulePeriodic(700, [&](Duration p) {
        fired.emplace_back(q.now(), 0);
        return p;
    });
    const std::vector<Tick> oneshots = {70000000, 1400, 3,
                                        250000,   699,  4096};
    for (Tick w : oneshots)
        q.schedule(w, [&fired, w] { fired.emplace_back(w, 1); });

    q.runUntil(70000001); // one jump across every wheel level

    // Strictly time-ordered, with FIFO ties (periodic filed first
    // fires before a one-shot at the same tick).
    for (std::size_t i = 1; i < fired.size(); ++i)
        ASSERT_LE(fired[i - 1].first, fired[i].first)
            << "out of order at dispatch " << i;

    Tick next_periodic = 700;
    std::size_t next_oneshot = 0;
    std::vector<Tick> sorted = oneshots;
    std::sort(sorted.begin(), sorted.end());
    for (const auto &[when, src] : fired) {
        if (src == 0) {
            ASSERT_EQ(when, next_periodic);
            next_periodic += 700;
        } else {
            ASSERT_LT(next_oneshot, sorted.size());
            ASSERT_EQ(when, sorted[next_oneshot]);
            ++next_oneshot;
            // The interleave is pinned: every strictly-earlier
            // periodic tick already fired when a one-shot lands. At a
            // shared tick the one-shot wins the FIFO tie — it was
            // scheduled at t=0, before the periodic refiled itself —
            // so the periodic's firing at `when` is still due.
            EXPECT_GE(next_periodic, when);
        }
    }
    EXPECT_EQ(next_oneshot, sorted.size());
    EXPECT_EQ(next_periodic, 70000700u); // 100000 periodic firings
    EXPECT_EQ(q.pending(), 1u);          // the refiled periodic
}

TEST(EventQueue, SameTickRescheduleFiresWithinTick)
{
    // An action that schedules for the current tick must still fire
    // inside the same runUntil, after the already-queued batch.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&] {
        fired.push_back(0);
        q.scheduleAfter(0, [&] { fired.push_back(2); });
    });
    q.schedule(10, [&] { fired.push_back(1); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, PastEventsClampToNow)
{
    EventQueue q;
    q.runUntil(50);
    bool fired = false;
    q.schedule(10, [&] { fired = true; });
    q.runUntil(50);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    bool fired = false;
    q.schedule(10, [&] { fired = true; });
    q.clear();
    q.runUntil(100);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.pending(), 0u);
}

} // namespace
