/**
 * @file
 * EventQueue: ordering, FIFO ties, periodic self-adaptive events.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using namespace hos::sim;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&] { fired.push_back(3); });
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(20, [&] { fired.push_back(2); });
    q.runUntil(25);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 25u);
    q.runUntil(100);
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&fired, i] { fired.push_back(i); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] {
        ++count;
        q.scheduleAfter(5, [&] { ++count; });
    });
    q.runUntil(20);
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PeriodicRunsAtPeriod)
{
    EventQueue q;
    int fires = 0;
    q.schedulePeriodic(10, [&](Duration p) {
        ++fires;
        return p;
    });
    q.runUntil(100);
    EXPECT_EQ(fires, 10);
}

TEST(EventQueue, PeriodicCanAdaptAndStop)
{
    EventQueue q;
    std::vector<Tick> at;
    q.schedulePeriodic(10, [&](Duration p) -> Duration {
        at.push_back(q.now());
        if (at.size() == 1)
            return p * 2; // slow down
        if (at.size() == 2)
            return 0; // stop
        return p;
    });
    q.runUntil(1000);
    ASSERT_EQ(at.size(), 2u);
    EXPECT_EQ(at[0], 10u);
    EXPECT_EQ(at[1], 30u);
}

TEST(EventQueue, CoarseEventOutranksLaterFineEvent)
{
    // An event filed while the clock was far away lands in a coarse
    // wheel level. After the clock advances into its block, a newer
    // event filed at fine granularity must not shadow it.
    EventQueue q;
    std::vector<Tick> fired;
    q.runUntil(100);
    q.schedule(4100, [&] { fired.push_back(4100); }); // coarse level
    q.runUntil(4097); // enter the 4096-block without dispatching
    q.schedule(4200, [&] { fired.push_back(4200); }); // fine level
    q.runUntil(5000);
    EXPECT_EQ(fired, (std::vector<Tick>{4100, 4200}));
}

TEST(EventQueue, FarJumpsAcrossLevels)
{
    EventQueue q;
    std::vector<Tick> fired;
    const std::vector<Tick> when = {20000000, 1, 300000, 70, 5000};
    for (Tick w : when)
        q.schedule(w, [&fired, w] { fired.push_back(w); });
    q.runUntil(30000000);
    EXPECT_EQ(fired, (std::vector<Tick>{1, 70, 5000, 300000, 20000000}));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.now(), 30000000u);
}

TEST(EventQueue, SameTickRescheduleFiresWithinTick)
{
    // An action that schedules for the current tick must still fire
    // inside the same runUntil, after the already-queued batch.
    EventQueue q;
    std::vector<int> fired;
    q.schedule(10, [&] {
        fired.push_back(0);
        q.scheduleAfter(0, [&] { fired.push_back(2); });
    });
    q.schedule(10, [&] { fired.push_back(1); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, PastEventsClampToNow)
{
    EventQueue q;
    q.runUntil(50);
    bool fired = false;
    q.schedule(10, [&] { fired = true; });
    q.runUntil(50);
    EXPECT_TRUE(fired);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    bool fired = false;
    q.schedule(10, [&] { fired = true; });
    q.clear();
    q.runUntil(100);
    EXPECT_FALSE(fired);
    EXPECT_EQ(q.pending(), 0u);
}

} // namespace
