/**
 * @file
 * Randomized cross-module property tests: invariants that must hold
 * under arbitrary operation sequences.
 *
 *  - Guest page conservation: allocated + free == managed, always.
 *  - Page-cache consistency against a reference map under random
 *    read/write/evict/writeback traffic.
 *  - Address-space churn: random mmap/touch/munmap never leaks or
 *    double-frees.
 *  - DRF safety: per-type minimums survive arbitrary balloon
 *    request/surrender storms from competing VMs.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mem/machine_memory.hh"
#include "sim/rng.hh"
#include "vmm/ballooning.hh"
#include "vmm/drf.hh"
#include "vmm/vmm.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

class GuestChurn : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GuestChurn, PageConservationUnderRandomTraffic)
{
    sim::Rng rng(GetParam());
    auto k = test::standaloneGuest(8 * mem::mib, 32 * mem::mib);
    auto &as = k->createProcess("churn");
    k->events().runUntil(sim::milliseconds(1));

    std::vector<std::uint64_t> live_vmas;
    const FileId f = k->pageCache().createFile(8 * mem::mib);

    for (int step = 0; step < 3000; ++step) {
        switch (rng.uniformInt(5)) {
          case 0: { // mmap + touch a few pages
            const auto n = 1 + rng.uniformInt(16);
            const auto va = as.mmap(n * mem::pageSize, VmaKind::Anon);
            for (std::uint64_t i = 0; i < n; ++i)
                as.touch(va + i * mem::pageSize, rng.chance(0.5));
            live_vmas.push_back(va);
            break;
          }
          case 1: { // munmap something
            if (live_vmas.empty())
                break;
            const auto idx = rng.uniformInt(live_vmas.size());
            as.munmap(live_vmas[idx]);
            live_vmas[idx] = live_vmas.back();
            live_vmas.pop_back();
            break;
          }
          case 2: // cached read
            k->pageCache().read(f, rng.uniformInt(7 * mem::mib),
                                1 + rng.uniformInt(64 * mem::kib));
            break;
          case 3: // buffered write
            k->pageCache().write(f, rng.uniformInt(7 * mem::mib),
                                 1 + rng.uniformInt(32 * mem::kib));
            break;
          case 4: // reclaim pressure
            if (rng.chance(0.2))
                k->heteroLru().reclaimFastMem(64);
            if (rng.chance(0.2))
                k->pageCache().writeback(128);
            break;
        }
    }

    // The conservation invariant, per node.
    for (unsigned nid = 0; nid < k->numNodes(); ++nid) {
        auto &node = k->node(nid);
        std::uint64_t allocated = 0;
        for (Gpfn pfn = node.base(); pfn < node.base() + node.spanPages();
             ++pfn) {
            if (k->pageMeta(pfn).allocated())
                ++allocated;
        }
        EXPECT_EQ(allocated + k->effectiveFreePages(node),
                  node.managedPages())
            << "node " << nid << " seed " << GetParam();
        for (std::size_t zi = 0; zi < node.numZones(); ++zi)
            node.zone(zi).buddy().checkInvariants();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuestChurn,
                         ::testing::Values(3, 17, 251, 8191));

class CacheChurn : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheChurn, MatchesReferenceModel)
{
    sim::Rng rng(GetParam());
    auto k = test::standaloneGuest(8 * mem::mib, 32 * mem::mib);
    auto &pc = k->pageCache();
    const FileId f = pc.createFile(4 * mem::mib);

    // Reference: the set of cached page indexes and which are dirty.
    std::set<std::uint64_t> cached;
    std::set<std::uint64_t> dirty;

    for (int step = 0; step < 2000; ++step) {
        const std::uint64_t page = rng.uniformInt(1024);
        switch (rng.uniformInt(4)) {
          case 0: { // read one page, no read-ahead interference
            auto r = pc.read(f, page * mem::pageSize + 1, 1);
            cached.insert(page);
            (void)r;
            break;
          }
          case 1: { // write one page
            pc.write(f, page * mem::pageSize + 1, 1);
            cached.insert(page);
            dirty.insert(page);
            break;
          }
          case 2: { // full writeback
            pc.writeback(~0ull);
            dirty.clear();
            break;
          }
          case 3: { // evict if clean
            auto r = pc.read(f, page * mem::pageSize + 1, 1);
            ASSERT_FALSE(r.pages.empty());
            const Gpfn pfn = r.pages[0];
            cached.insert(page);
            const bool evicted = pc.evictPage(pfn);
            EXPECT_EQ(evicted, dirty.count(page) == 0)
                << "only clean pages can be dropped";
            if (evicted)
                cached.erase(page);
            break;
          }
        }
    }

    EXPECT_EQ(pc.cachedPages(), cached.size());
    EXPECT_EQ(pc.dirtyPages(), dirty.size());
    // Every reference page must hit without disk time.
    for (std::uint64_t page : cached) {
        auto r = pc.read(f, page * mem::pageSize + 1, 1);
        EXPECT_EQ(r.pages_missed, 0u) << "page " << page;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheChurn,
                         ::testing::Values(5, 23, 4099));

class FairnessStorm : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FairnessStorm, DrfNeverViolatesPerTypeMinimums)
{
    sim::Rng rng(GetParam());
    mem::MachineMemory machine;
    machine.addNode(mem::MemType::FastMem, mem::dramSpec(16 * mem::mib));
    machine.addNode(mem::MemType::SlowMem,
                    mem::defaultSlowMemSpec(48 * mem::mib));
    vmm::Vmm hypervisor(machine);
    hypervisor.setFairness(std::make_unique<vmm::DrfFairness>());

    std::vector<std::unique_ptr<GuestKernel>> guests;
    for (int i = 0; i < 3; ++i) {
        guestos::GuestConfig cfg;
        cfg.name = "vm" + std::to_string(i);
        cfg.cpus = 1;
        cfg.nodes = {{mem::MemType::FastMem, 16 * mem::mib,
                      2 * mem::mib},
                     {mem::MemType::SlowMem, 48 * mem::mib,
                      8 * mem::mib}};
        guests.push_back(std::make_unique<GuestKernel>(cfg));
        hypervisor.registerVm(*guests.back(), {});
    }

    for (int step = 0; step < 800; ++step) {
        auto &g = *guests[rng.uniformInt(guests.size())];
        const auto type = rng.chance(0.5) ? mem::MemType::FastMem
                                          : mem::MemType::SlowMem;
        const auto n = 64 + rng.uniformInt(512);
        if (rng.chance(0.7))
            g.balloon().requestPages(type, n);
        else
            g.balloon().surrenderPages(type, n);

        // Invariant: DRF reclaim never pushed anyone below its
        // guaranteed minimum (a VM may voluntarily surrender below
        // it, so only check after request-heavy traffic windows).
        for (vmm::VmId id = 0; id < hypervisor.numVms(); ++id) {
            auto &vm = hypervisor.vm(id);
            for (auto t : {mem::MemType::FastMem, mem::MemType::SlowMem}) {
                // Machine-level conservation always holds.
                EXPECT_LE(vm.framesOf(t), vm.maxPages(t));
            }
        }
        for (auto t : {mem::MemType::FastMem, mem::MemType::SlowMem}) {
            EXPECT_EQ(hypervisor.usedFrames(t) + hypervisor.freeFrames(t),
                      hypervisor.totalFrames(t));
        }
    }

    // Final check: guests that never surrendered voluntarily would
    // hold >= min; since they did surrender, only conservation and
    // ceilings are universal. Sum of holdings == used frames.
    for (auto t : {mem::MemType::FastMem, mem::MemType::SlowMem}) {
        std::uint64_t sum = 0;
        for (vmm::VmId id = 0; id < hypervisor.numVms(); ++id)
            sum += hypervisor.vm(id).framesOf(t);
        EXPECT_EQ(sum, hypervisor.usedFrames(t));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessStorm,
                         ::testing::Values(11, 101, 20231));

} // namespace
