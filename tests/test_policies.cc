/**
 * @file
 * Management policies: guest/VM configuration effects, VMM-exclusive
 * topology collapsing and oracle installation, coordinated wiring.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "policy/coordinated.hh"
#include "policy/vmm_exclusive.hh"

namespace {

using namespace hos;

guestos::GuestConfig
baseGuestCfg()
{
    guestos::GuestConfig cfg;
    cfg.nodes = {{mem::MemType::FastMem, 8 * mem::mib, 8 * mem::mib},
                 {mem::MemType::SlowMem, 32 * mem::mib, 32 * mem::mib}};
    return cfg;
}

TEST(Policies, ModesConfigureAllocator)
{
    struct Expect
    {
        core::Approach approach;
        guestos::AllocMode mode;
        bool lru;
    };
    const Expect cases[] = {
        {core::Approach::SlowMemOnly, guestos::AllocMode::SlowOnly, false},
        {core::Approach::FastMemOnly, guestos::AllocMode::FastOnly, false},
        {core::Approach::Random, guestos::AllocMode::Random, false},
        {core::Approach::NumaPreferred, guestos::AllocMode::FastPreferred,
         false},
        {core::Approach::HeapOd, guestos::AllocMode::OnDemand, false},
        {core::Approach::HeapIoSlabOd, guestos::AllocMode::OnDemand,
         false},
        {core::Approach::HeteroLru, guestos::AllocMode::OnDemand, true},
        {core::Approach::Coordinated, guestos::AllocMode::OnDemand, true},
    };
    for (const auto &c : cases) {
        auto policy = core::makePolicy(c.approach);
        auto cfg = baseGuestCfg();
        policy->configureGuest(cfg);
        EXPECT_EQ(cfg.alloc.mode, c.mode) << core::approachName(c.approach);
        EXPECT_EQ(cfg.lru.enabled, c.lru)
            << core::approachName(c.approach);
    }
}

TEST(Policies, HeapOdEligibilityIsHeapOnly)
{
    auto policy = core::makePolicy(core::Approach::HeapOd);
    auto cfg = baseGuestCfg();
    policy->configureGuest(cfg);
    using PT = guestos::PageType;
    EXPECT_TRUE(cfg.alloc.od_eligible[guestos::pageTypeIndex(PT::Anon)]);
    EXPECT_FALSE(
        cfg.alloc.od_eligible[guestos::pageTypeIndex(PT::PageCache)]);
    EXPECT_FALSE(
        cfg.alloc.od_eligible[guestos::pageTypeIndex(PT::NetBuf)]);
}

TEST(Policies, VmmExclusiveCollapsesTopology)
{
    policy::VmmExclusivePolicy policy;
    auto cfg = baseGuestCfg();
    policy.configureGuest(cfg);
    ASSERT_EQ(cfg.nodes.size(), 1u);
    EXPECT_EQ(cfg.nodes[0].max_bytes, 40 * mem::mib);

    vmm::VmConfig vcfg;
    policy.configureVm(vcfg);
    EXPECT_TRUE(vcfg.hide_heterogeneity);
}

TEST(Policies, VmmExclusiveInstallsBackingOracle)
{
    auto spec = core::Scenario{};
    spec.approach = core::Approach::VmmExclusive;
    spec.fast_bytes = 8 * mem::mib;
    spec.slow_bytes = 32 * mem::mib;
    auto sys = core::systemFor(spec);
    auto &slot = sys->slot(0);

    // The guest's nominal node type is SlowMem, but the oracle sees
    // through to the P2M: the boot tail is fast-backed.
    auto &vm = sys->vmm().vm(slot.id);
    ASSERT_FALSE(vm.fastBacked().empty());
    const guestos::Gpfn fast_backed = *vm.fastBacked().begin();
    EXPECT_EQ(slot.kernel->pageMeta(fast_backed).mem_type(),
              mem::MemType::SlowMem)
        << "the guest believes everything is one type";
    EXPECT_EQ(slot.kernel->backingOf(fast_backed),
              mem::MemType::FastMem)
        << "the oracle tells the truth";
}

TEST(Policies, CoordinatedSchedulesDaemons)
{
    auto spec = core::Scenario{};
    spec.approach = core::Approach::Coordinated;
    spec.fast_bytes = 8 * mem::mib;
    spec.slow_bytes = 32 * mem::mib;
    auto sys = core::systemFor(spec);
    auto &slot = sys->slot(0);
    EXPECT_GE(slot.kernel->events().pending(), 2u)
        << "directive publisher + scan loop are scheduled";
}

TEST(Policies, ApproachNamesAreStable)
{
    EXPECT_STREQ(core::approachName(core::Approach::HeteroLru),
                 "HeteroOS-LRU");
    EXPECT_STREQ(core::approachName(core::Approach::VmmExclusive),
                 "VMM-exclusive");
    EXPECT_STREQ(core::approachName(core::Approach::Coordinated),
                 "HeteroOS-coordinated");
}

} // namespace
