/**
 * @file
 * hos::metrics: the telemetry layer must be exact and invisible. Each
 * test pins one leg of that contract: the windowed-series decimation
 * is a pure function of (capacity, offers), the HDR histogram is
 * exact below its sub-bucket floor and sum-preserving above it, merge
 * equals combined recording, the per-VM slowdown totals reconcile to
 * the nanosecond with the kernel's overhead accounts, a metrics-on
 * run is bit-identical to a metrics-off run, auditMetrics catches
 * seeded corruption, and the report round-trips through JSON
 * byte-for-byte.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/auditors.hh"
#include "check/check.hh"
#include "core/experiment.hh"
#include "metrics/metrics.hh"
#include "metrics/report.hh"
#include "sim/series.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;

core::Scenario
metricsScenario()
{
    return core::Scenario{}
        .withApp(workload::AppId::GraphChi)
        .withApproach(core::Approach::Coordinated)
        .withScale(0.02)
        .withCapacity(24 * mem::mib, 96 * mem::mib)
        .withSeed(3)
        .withMetrics();
}

TEST(WindowedSeries, DecimationIsDeterministic)
{
    // The retained subset is a pure function of (capacity, offers):
    // two series fed the same stream agree element-wise, every
    // retained sample sits on the final stride, and the buffer never
    // exceeds capacity.
    sim::WindowedSeries<std::int64_t> a(16), b(16);
    for (std::int64_t i = 0; i < 1000; ++i) {
        a.push(static_cast<sim::Tick>(i * 10), i);
        b.push(static_cast<sim::Tick>(i * 10), i);
    }
    EXPECT_EQ(a.offered(), 1000u);
    EXPECT_EQ(a.stride(), b.stride());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_LE(a.size(), a.capacity());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.timeAt(i), b.timeAt(i));
        EXPECT_EQ(a.valueAt(i), b.valueAt(i));
        // Retained sample k was offered at index k * stride.
        EXPECT_EQ(a.valueAt(i),
                  static_cast<std::int64_t>(i * a.stride()));
    }
    // Stride is the smallest power of two whose retained samples
    // (indices 0, s, 2s, ...) fit 1000 offers in capacity: at 64 the
    // 16 survivors are offers 0..960 and the ring is exactly full.
    EXPECT_EQ(a.stride(), 64u);
    EXPECT_EQ(a.size(), 16u);
}

TEST(HdrHistogram, ExactBelowSubBucketBoundedAbove)
{
    using H = metrics::HdrHistogram;
    // Below 2^subBucketBits every value has its own bucket.
    for (std::uint64_t v = 0; v < H::subBucketCount; ++v) {
        EXPECT_EQ(H::bucketLow(H::bucketIndex(v)), v);
        EXPECT_EQ(H::bucketHigh(H::bucketIndex(v)), v);
    }
    // Above, the bucket brackets the value with relative width
    // bounded by 2^-subBucketBits.
    for (std::uint64_t v : {37ull, 1000ull, 123456ull, 987654321ull,
                            (1ull << 62) + 12345ull}) {
        const std::size_t i = H::bucketIndex(v);
        EXPECT_LE(H::bucketLow(i), v);
        EXPECT_GE(H::bucketHigh(i), v);
        EXPECT_LE(H::bucketHigh(i) - H::bucketLow(i),
                  v >> (H::subBucketBits - 1));
    }

    H h;
    h.record(7);
    h.record(7);
    h.record(9);
    EXPECT_EQ(h.totalCount(), 3u);
    EXPECT_EQ(h.valueSum(), 23u);
    EXPECT_EQ(h.minValue(), 7u);
    EXPECT_EQ(h.maxValue(), 9u);
    // Small values are exact through the percentile query too.
    EXPECT_EQ(h.valueAtPermyriad(5000), 7u);
    EXPECT_EQ(h.valueAtPermyriad(9999), 9u);

    // 1..1000 uniform: every percentile lands within one bucket width
    // of the true order statistic, and the max is exact.
    H u;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        u.record(v);
    EXPECT_EQ(u.valueSum(), 500500u);
    const std::uint64_t p50 = u.valueAtPermyriad(5000);
    EXPECT_GE(p50, 500u);
    EXPECT_LE(p50, 500u + (500u >> (H::subBucketBits - 1)));
    EXPECT_EQ(u.valueAtPermyriad(10000), 1000u);
    EXPECT_EQ(u.maxValue(), 1000u);
}

TEST(HdrHistogram, MergeMatchesCombinedRecording)
{
    metrics::HdrHistogram a, b, combined;
    for (std::uint64_t v = 1; v <= 500; ++v) {
        a.record(v * 3);
        combined.record(v * 3);
    }
    for (std::uint64_t v = 1; v <= 300; ++v) {
        b.record(v * 7 + 1);
        combined.record(v * 7 + 1);
    }
    a.merge(b);
    EXPECT_TRUE(a == combined);
    EXPECT_EQ(a.totalCount(), combined.totalCount());
    EXPECT_EQ(a.valueSum(), combined.valueSum());
    EXPECT_EQ(a.minValue(), combined.minValue());
    EXPECT_EQ(a.maxValue(), combined.maxValue());
    for (std::uint64_t q : {2500u, 5000u, 9000u, 9900u, 9990u})
        EXPECT_EQ(a.valueAtPermyriad(q), combined.valueAtPermyriad(q));
}

TEST(Metrics, SlowdownReconcilesWithKernelOverhead)
{
    // The acceptance invariant: every nanosecond of management
    // overhead the kernel charged is folded into exactly one phase
    // observation — collector totals equal the kernel's grand total
    // minus what is still pending, as integers, no slack.
    if (!metrics::metricsCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_METRICS=off)";
    const core::Scenario s = metricsScenario();
    auto sys = core::systemFor(s);
    sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));

    const metrics::Collector &mx = sys->metricsCollector();
    ASSERT_TRUE(mx.enabled());
    ASSERT_EQ(mx.numVms(), 1u);
    const std::uint16_t vm = mx.vmAt(0);
    EXPECT_GT(mx.phases(vm), 0u);
    EXPECT_GT(mx.samples(vm), 0u);
    EXPECT_GT(mx.windowsClosed(vm), 0u);

    auto &kernel = *sys->slot(0).kernel;
    EXPECT_EQ(mx.totalOverheadNs(vm),
              static_cast<std::uint64_t>(kernel.overheadGrandTotal()) -
                  static_cast<std::uint64_t>(kernel.pendingOverhead()));

    const metrics::HdrHistogram *hist = mx.slowdownHistogram(vm);
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->totalCount(), mx.windowsClosed(vm));
    EXPECT_EQ(hist->valueSum(), mx.slowdownPpmSum(vm));

    // runOne already enforced auditMetrics; re-running it pins the
    // reconciliation explicitly and counts the invariants evaluated.
    const auto audit = check::auditMetrics(sys->vmm(), mx);
    EXPECT_TRUE(audit.ok())
        << (audit.failures.empty()
                ? std::string()
                : audit.failures.front().describe());
    EXPECT_GT(audit.checks, 0u);
}

TEST(Metrics, OnRunIsBitIdenticalToOffRun)
{
    // Metrics observes, it never steers: the sampling daemon rides
    // the guest event queue but its actions are read-only, so the
    // simulation must not see it. Same scenario with and without the
    // collector → identical elapsed ticks, phases and figures of
    // merit.
    core::Scenario off = metricsScenario();
    off.metrics = false;
    auto sys_off = core::systemFor(off);
    const auto r_off =
        sys_off->runOne(sys_off->slot(0), workload::makeApp(off.app, off.scale));

    const core::Scenario on = metricsScenario();
    auto sys_on = core::systemFor(on);
    const auto r_on =
        sys_on->runOne(sys_on->slot(0), workload::makeApp(on.app, on.scale));

    EXPECT_EQ(r_off.elapsed, r_on.elapsed);
    EXPECT_EQ(r_off.phases, r_on.phases);
    EXPECT_EQ(r_off.instructions, r_on.instructions);
    EXPECT_EQ(r_off.llc_misses, r_on.llc_misses);
    EXPECT_EQ(r_off.metric, r_on.metric);
}

TEST(Metrics, AuditCatchesSeededCorruption)
{
    if (!metrics::metricsCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_METRICS=off)";
    const core::Scenario s = metricsScenario();
    auto sys = core::systemFor(s);
    sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));
    metrics::Collector &mx = sys->metricsCollector();
    ASSERT_TRUE(check::auditMetrics(sys->vmm(), mx).ok());

    // Feed one phantom phase behind the kernel's back: the drained-
    // overhead reconciliation must pin it as CheckKind::Metrics.
    const std::uint16_t vm = mx.vmAt(0);
    mx.onPhase(vm, /*now=*/1, /*actual=*/100, /*ideal=*/50,
               /*overhead=*/25);
    const auto audit = check::auditMetrics(sys->vmm(), mx);
    ASSERT_FALSE(audit.ok());
    EXPECT_EQ(audit.failures.front().kind, check::CheckKind::Metrics);

    // And enforce() must surface it as a typed CheckError.
    check::ScopedThrowMode throw_mode;
    try {
        check::enforce(audit);
        FAIL() << "enforce() let corrupted metrics pass";
    } catch (const check::CheckError &e) {
        EXPECT_EQ(e.kind(), check::CheckKind::Metrics);
    }
}

TEST(Metrics, ReportRoundTripsThroughJson)
{
    if (!metrics::metricsCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_METRICS=off)";
    const core::Scenario s = metricsScenario();
    auto sys = core::systemFor(s);
    sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));

    const auto serialize = [](const metrics::MetricsReport &r) {
        std::ostringstream os;
        sim::JsonWriter w(os);
        metrics::writeMetricsReport(w, r);
        return os.str();
    };
    const auto report = sys->metricsCollector().report();
    ASSERT_FALSE(report.empty());
    const std::string json = serialize(report);
    ASSERT_TRUE(test::jsonWellFormed(json));

    std::string error;
    const auto doc = sim::jsonParse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto parsed = metrics::metricsReportFromJson(*doc, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(serialize(parsed), json);
    // The histogram survives with its exact aggregates, not just its
    // bucket shape.
    ASSERT_EQ(parsed.vms.size(), report.vms.size());
    for (std::size_t i = 0; i < report.vms.size(); ++i) {
        EXPECT_TRUE(parsed.vms[i].slowdown == report.vms[i].slowdown);
        EXPECT_EQ(parsed.vms[i].slowdown_ppm_sum,
                  report.vms[i].slowdown_ppm_sum);
    }
}

TEST(Metrics, MergeAggregatesPerVmTag)
{
    // Fleet rollup: histograms and totals accumulate per VM tag, new
    // tags append, series stay with the destination (time-series do
    // not merge across runs).
    metrics::MetricsReport a, b;
    metrics::MetricsVm va;
    va.vm = 0;
    va.windows = 4;
    va.slowdown_ppm_sum = 8000000;
    va.slowdown.record(2000000, 4);
    a.vms.push_back(va);

    metrics::MetricsVm vb = va;
    vb.windows = 2;
    vb.slowdown_ppm_sum = 6000000;
    vb.slowdown.clear();
    vb.slowdown.record(3000000, 2);
    metrics::MetricsVm vc;
    vc.vm = 1;
    vc.windows = 1;
    vc.slowdown.record(1000000);
    b.vms.push_back(vb);
    b.vms.push_back(vc);

    metrics::mergeInto(a, b);
    ASSERT_EQ(a.vms.size(), 2u);
    EXPECT_EQ(a.vms[0].windows, 6u);
    EXPECT_EQ(a.vms[0].slowdown_ppm_sum, 14000000u);
    EXPECT_EQ(a.vms[0].slowdown.totalCount(), 6u);
    EXPECT_EQ(a.vms[0].slowdown.valueSum(), 14000000u);
    EXPECT_EQ(a.vms[1].vm, 1u);
    EXPECT_EQ(a.vms[1].slowdown.totalCount(), 1u);
}

TEST(Metrics, InactiveCollectorSeesNothing)
{
    // Without enableMetrics the hook sites see a null active()
    // collector: a full run leaves the system's collector empty and
    // the report empty (which is what keeps metrics-off results.json
    // byte-identical — the "metrics" key is only emitted when the
    // report is non-empty).
    core::Scenario s = metricsScenario();
    s.metrics = false;
    auto sys = core::systemFor(s);
    sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));
    EXPECT_FALSE(sys->metricsCollector().enabled());
    EXPECT_EQ(sys->metricsCollector().numVms(), 0u);
    EXPECT_TRUE(sys->metricsCollector().report().empty());
}

} // namespace
