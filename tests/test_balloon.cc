/**
 * @file
 * BalloonFrontend end-to-end with the VMM: boot population runs,
 * surrender under load (free pages, reclaim, swap), and the
 * detached-backend behaviour.
 */

#include <gtest/gtest.h>

#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "vmm/vmm.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;

struct BalloonFixture : ::testing::Test
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> hypervisor;
    std::unique_ptr<guestos::GuestKernel> guest;

    void
    SetUp() override
    {
        machine.addNode(mem::MemType::FastMem, mem::dramSpec(8 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(32 * mem::mib));
        hypervisor = std::make_unique<vmm::Vmm>(machine);

        guestos::GuestConfig cfg;
        cfg.name = "g";
        cfg.cpus = 2;
        cfg.lru.enabled = true;
        cfg.nodes = {{mem::MemType::FastMem, 8 * mem::mib, 4 * mem::mib},
                     {mem::MemType::SlowMem, 32 * mem::mib,
                      16 * mem::mib}};
        guest = std::make_unique<guestos::GuestKernel>(cfg);
        hypervisor->registerVm(*guest, {});
    }
};

TEST_F(BalloonFixture, DetachedFrontendRefuses)
{
    guestos::GuestConfig cfg;
    cfg.name = "lonely";
    cfg.nodes = {{mem::MemType::SlowMem, mem::mib, mem::mib}};
    guestos::GuestKernel lonely(cfg);
    EXPECT_FALSE(lonely.balloon().attached());
    EXPECT_EQ(lonely.balloon().requestPages(mem::MemType::SlowMem, 10),
              0u);
}

TEST_F(BalloonFixture, PopulatedTracksGrantsAndSurrenders)
{
    const auto boot_fast = guest->balloon().populated(0);
    EXPECT_EQ(boot_fast, mem::bytesToPages(4 * mem::mib));
    guest->balloon().requestPages(mem::MemType::FastMem, 100);
    EXPECT_EQ(guest->balloon().populated(0), boot_fast + 100);
    guest->balloon().surrenderPages(mem::MemType::FastMem, 50);
    EXPECT_EQ(guest->balloon().populated(0), boot_fast + 50);
}

TEST_F(BalloonFixture, SurrenderUsesFreePagesFirst)
{
    const auto before =
        guest->overheadTotal(guestos::OverheadKind::Swap);
    const auto given =
        guest->balloon().surrenderPages(mem::MemType::SlowMem, 128);
    EXPECT_EQ(given, 128u);
    EXPECT_EQ(guest->overheadTotal(guestos::OverheadKind::Swap), before)
        << "free pages satisfied the balloon without swapping";
}

TEST_F(BalloonFixture, SurrenderSwapsWhenNothingIsFree)
{
    // Exhaust SlowMem with mapped anon pages.
    auto &as = guest->createProcess("hog");
    const auto va = as.mmap(16 * mem::mib, guestos::VmaKind::Anon,
                            guestos::MemHint::SlowMem);
    std::uint64_t mapped = 0;
    for (std::uint64_t off = 0; off < 16 * mem::mib;
         off += mem::pageSize) {
        if (as.touch(va + off, true) != guestos::invalidGpfn)
            ++mapped;
    }
    ASSERT_GT(mapped, mem::bytesToPages(14 * mem::mib));

    const auto swapped_before = guest->swap().totalSwappedOut();
    const auto given =
        guest->balloon().surrenderPages(mem::MemType::SlowMem, 256);
    EXPECT_GT(given, 0u);
    EXPECT_GT(guest->swap().totalSwappedOut(), swapped_before)
        << "the last resort is swapping anon pages out";
    EXPECT_LT(as.mappedPages(), mapped) << "swapped pages lost PTEs";
}

TEST_F(BalloonFixture, SurrenderedFramesServeOtherVms)
{
    guest->balloon().surrenderPages(mem::MemType::FastMem,
                                    mem::bytesToPages(2 * mem::mib));

    guestos::GuestConfig cfg;
    cfg.name = "second";
    cfg.cpus = 1;
    cfg.nodes = {{mem::MemType::FastMem, 8 * mem::mib, 6 * mem::mib},
                 {mem::MemType::SlowMem, 8 * mem::mib, 4 * mem::mib}};
    guestos::GuestKernel second(cfg);
    const auto id2 = hypervisor->registerVm(second, {});
    EXPECT_EQ(hypervisor->vm(id2).framesOf(mem::MemType::FastMem),
              mem::bytesToPages(6 * mem::mib));
}

TEST_F(BalloonFixture, GrantedPagesAreAllocatable)
{
    auto *fast = guest->nodeFor(mem::MemType::FastMem);
    const auto before = fast->managedPages();
    guest->balloon().requestPages(mem::MemType::FastMem, 64);
    EXPECT_EQ(fast->managedPages(), before + 64);
    const auto pfn =
        guest->allocPageOnNode(fast->id(), guestos::PageType::Anon);
    EXPECT_NE(pfn, guestos::invalidGpfn);
}

} // namespace
