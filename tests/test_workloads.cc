/**
 * @file
 * Workload engine + application models: lifecycle, placement
 * sensitivity, metrics, page-mix characterization, and the
 * microbenchmarks.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workload/memlat.hh"
#include "workload/stream.hh"

namespace {

using namespace hos;

core::Scenario
tiny(core::Approach a)
{
    return core::Scenario{}
        .withApproach(a)
        .withCapacity(128 * mem::mib, 512 * mem::mib)
        .withScale(0.02);
}

TEST(Workloads, LifecycleAndResultFields)
{
    auto sys = core::systemFor(tiny(core::Approach::HeteroLru));
    auto wl = workload::createApp(workload::AppId::LevelDb,
                                  sys->envFor(sys->slot(0)), 0.02);
    EXPECT_FALSE(wl->started());
    wl->start();
    EXPECT_TRUE(wl->started());
    while (wl->step()) {
    }
    auto res = wl->finish();
    EXPECT_GT(res.elapsed, 0u);
    EXPECT_GT(res.phases, 0u);
    EXPECT_GT(res.instructions, 0u);
    EXPECT_GT(res.metric, 0.0);
    EXPECT_EQ(res.metric_name, "throughput(MB/s)");
}

TEST(Workloads, EveryAppHasASensibleMetric)
{
    const char *expected[] = {"time(sec)",          "time(sec)",
                              "time(sec)",          "throughput(MB/s)",
                              "requests/sec",       "requests/sec"};
    std::size_t i = 0;
    for (auto app : workload::allApps) {
        auto res =
            core::run(tiny(core::Approach::HeapIoSlabOd).withApp(app));
        EXPECT_EQ(res.metric_name, expected[i++])
            << workload::appName(app);
        EXPECT_GT(res.metric, 0.0);
    }
}

TEST(Workloads, SlowMemHurtsMemoryBoundApps)
{
    auto fast = core::run(tiny(core::Approach::FastMemOnly));
    auto slow = core::run(tiny(core::Approach::SlowMemOnly));
    EXPECT_GT(slow.elapsed, fast.elapsed);
}

TEST(Workloads, NginxIsInsensitive)
{
    auto fast = core::run(
        tiny(core::Approach::FastMemOnly).withApp(workload::AppId::Nginx));
    auto slow = core::run(
        tiny(core::Approach::SlowMemOnly).withApp(workload::AppId::Nginx));
    const double slowdown = static_cast<double>(slow.elapsed) /
                            static_cast<double>(fast.elapsed);
    EXPECT_LT(slowdown, 1.5) << "the paper reports <10% at full scale";
}

TEST(Workloads, MpkiOrderingMatchesTable4)
{
    // Graph apps must be markedly more memory-intensive than the
    // serving apps (Table 4's ordering, loosely).
    auto graphchi = core::run(tiny(core::Approach::FastMemOnly));
    auto nginx = core::run(
        tiny(core::Approach::FastMemOnly).withApp(workload::AppId::Nginx));
    EXPECT_GT(graphchi.mpki, 2.0 * nginx.mpki);
}

TEST(Workloads, PageMixMatchesCharacterization)
{
    // Metis: heap-dominated. Redis: substantial NetBuf share. The
    // Figure 4 shapes, qualitatively.
    auto sys = core::systemFor(tiny(core::Approach::HeapIoSlabOd));
    auto &slot = sys->slot(0);
    sys->runOne(slot, workload::makeApp(workload::AppId::Metis, 0.02));
    using PT = guestos::PageType;
    auto &k = *slot.kernel;
    EXPECT_GT(k.allocCount(PT::Anon),
              (3 * (k.allocCount(PT::PageCache) +
                    k.allocCount(PT::NetBuf))) / 2);

    auto sys2 = core::systemFor(tiny(core::Approach::HeapIoSlabOd));
    auto &slot2 = sys2->slot(0);
    sys2->runOne(slot2, workload::makeApp(workload::AppId::Redis, 0.02));
    EXPECT_GT(slot2.kernel->allocCount(PT::NetBuf), 0u);
}

TEST(Workloads, MemlatLatencyTracksBackingTier)
{
    auto run = [&](core::Approach a) {
        return core::run(tiny(a), [](workload::VmEnv env) {
            workload::MemlatBenchmark::Params p;
            p.wss_bytes = 64 * mem::mib;
            p.phases = 6;
            return std::make_unique<workload::MemlatBenchmark>(
                std::move(env), p);
        });
    };
    const auto fast = run(core::Approach::FastMemOnly);
    const auto slow = run(core::Approach::SlowMemOnly);
    EXPECT_GT(slow.metric, 2.0 * fast.metric)
        << "L:5,B:9 SlowMem must show much higher chase latency";
}

TEST(Workloads, StreamBandwidthTracksBackingTier)
{
    auto run = [&](core::Approach a) {
        return core::run(tiny(a), [](workload::VmEnv env) {
            workload::StreamBenchmark::Params p;
            p.wss_bytes = 64 * mem::mib;
            p.sweeps = 6;
            return std::make_unique<workload::StreamBenchmark>(
                std::move(env), p);
        });
    };
    const auto fast = run(core::Approach::FastMemOnly);
    const auto slow = run(core::Approach::SlowMemOnly);
    EXPECT_GT(fast.metric, 3.0 * slow.metric)
        << "B:9 bandwidth reduction must show up in STREAM";
}

TEST(Workloads, DeterministicAcrossRuns)
{
    const auto a = core::run(
        tiny(core::Approach::HeteroLru).withApp(workload::AppId::Redis));
    const auto b = core::run(
        tiny(core::Approach::HeteroLru).withApp(workload::AppId::Redis));
    EXPECT_EQ(a.elapsed, b.elapsed) << "same seed, same result";
}

} // namespace
