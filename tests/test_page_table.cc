/**
 * @file
 * PageTable: mapping, bits, remap, scan (with budget), accounting,
 * and sparse-address handling.
 */

#include <gtest/gtest.h>

#include "guestos/page_table.hh"

namespace {

using namespace hos::guestos;
using hos::mem::pageSize;

TEST(PageTable, MapAndLookup)
{
    PageTable t;
    t.map(0x1000, 42, true);
    auto pte = t.lookup(0x1000);
    ASSERT_TRUE(pte.has_value());
    EXPECT_EQ(pte->pfn, 42u);
    EXPECT_TRUE(pte->writable);
    EXPECT_FALSE(pte->accessed);
    EXPECT_FALSE(t.lookup(0x2000).has_value());
    EXPECT_EQ(t.mappedPages(), 1u);
}

TEST(PageTable, TouchSetsAccessedAndDirty)
{
    PageTable t;
    t.map(0x1000, 1, true);
    EXPECT_TRUE(t.touch(0x1000, false));
    EXPECT_TRUE(t.lookup(0x1000)->accessed);
    EXPECT_FALSE(t.lookup(0x1000)->dirty);
    t.touch(0x1000, true);
    EXPECT_TRUE(t.lookup(0x1000)->dirty);
    EXPECT_FALSE(t.touch(0x9000, false)) << "fault on unmapped address";
}

TEST(PageTable, UnmapReturnsFrame)
{
    PageTable t;
    t.map(0x5000, 7, true);
    auto pfn = t.unmap(0x5000);
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(*pfn, 7u);
    EXPECT_FALSE(t.isMapped(0x5000));
    EXPECT_FALSE(t.unmap(0x5000).has_value());
    EXPECT_EQ(t.mappedPages(), 0u);
}

TEST(PageTable, RemapKeepsMappingDropsBits)
{
    PageTable t;
    t.map(0x1000, 1, true);
    t.touch(0x1000, true);
    EXPECT_TRUE(t.remap(0x1000, 99));
    auto pte = t.lookup(0x1000);
    EXPECT_EQ(pte->pfn, 99u);
    EXPECT_FALSE(pte->accessed) << "migration clears hardware bits";
    EXPECT_FALSE(pte->dirty);
    EXPECT_FALSE(t.remap(0x7000, 1));
}

TEST(PageTable, SparseHighAddresses)
{
    PageTable t;
    const std::uint64_t far = (PageTable::vaSpan / 2) & ~(pageSize - 1);
    t.map(far, 3, false);
    EXPECT_TRUE(t.isMapped(far));
    EXPECT_FALSE(t.isMapped(far + pageSize));
    // A single sparse mapping costs exactly one node chain.
    EXPECT_EQ(t.tableNodes(), 1u + 3u) << "root + one 3-level chain";
}

TEST(PageTable, ScanRangeHarvestsAndClears)
{
    PageTable t;
    for (std::uint64_t i = 0; i < 100; ++i)
        t.map(i * pageSize, i, true);
    for (std::uint64_t i = 0; i < 100; i += 2)
        t.touch(i * pageSize, false);

    std::uint64_t accessed = 0;
    const auto visited = t.scanRange(
        0, 100 * pageSize,
        [&](std::uint64_t, const PteView &pte) {
            if (pte.accessed)
                ++accessed;
        },
        /*clear_accessed=*/true);
    EXPECT_EQ(visited, 100u);
    EXPECT_EQ(accessed, 50u);

    // Second scan: bits were cleared.
    accessed = 0;
    t.scanRange(0, 100 * pageSize,
                [&](std::uint64_t, const PteView &pte) {
                    if (pte.accessed)
                        ++accessed;
                },
                true);
    EXPECT_EQ(accessed, 0u);
}

TEST(PageTable, ScanRangeRespectsBudget)
{
    PageTable t;
    for (std::uint64_t i = 0; i < 64; ++i)
        t.map(i * pageSize, i, true);
    std::uint64_t seen = 0;
    const auto visited = t.scanRange(
        0, 64 * pageSize,
        [&](std::uint64_t, const PteView &) { ++seen; }, false, 10);
    EXPECT_EQ(visited, 10u);
    EXPECT_EQ(seen, 10u);
}

TEST(PageTable, ScanRangeWindow)
{
    PageTable t;
    for (std::uint64_t i = 0; i < 32; ++i)
        t.map(i * pageSize, i, true);
    std::vector<std::uint64_t> vas;
    t.scanRange(8 * pageSize, 16 * pageSize,
                [&](std::uint64_t va, const PteView &) {
                    vas.push_back(va);
                },
                false);
    ASSERT_EQ(vas.size(), 8u);
    EXPECT_EQ(vas.front(), 8 * pageSize);
    EXPECT_EQ(vas.back(), 15 * pageSize);
}

TEST(PageTable, AccountingHook)
{
    std::int64_t nodes = 0;
    {
        PageTable t([&](std::int64_t d) { nodes += d; });
        EXPECT_EQ(nodes, 1); // root
        t.map(0, 1, true);
        EXPECT_EQ(nodes, 4); // root + 3 levels
    }
    EXPECT_EQ(nodes, 0) << "teardown releases everything";
}

TEST(PageTable, OvermapPanics)
{
    PageTable t;
    t.map(0x1000, 1, true);
    EXPECT_DEATH(t.map(0x1000, 2, true), "overmapping");
}

} // namespace
