/**
 * @file
 * P2m: mapping lifecycle, tier accounting, and retargeting.
 */

#include <gtest/gtest.h>

#include "vmm/p2m.hh"

namespace {

using namespace hos;
using vmm::P2m;

TEST(P2m, StartsUnpopulated)
{
    P2m p2m(100);
    EXPECT_EQ(p2m.populatedCount(), 0u);
    EXPECT_FALSE(p2m.populated(0));
    EXPECT_EQ(p2m.mfnOf(5), mem::invalidMfn);
}

TEST(P2m, SetAndClear)
{
    P2m p2m(100);
    p2m.set(3, 777, mem::MemType::FastMem);
    EXPECT_TRUE(p2m.populated(3));
    EXPECT_EQ(p2m.mfnOf(3), 777u);
    EXPECT_EQ(p2m.tierOf(3), mem::MemType::FastMem);
    EXPECT_EQ(p2m.populatedCount(), 1u);
    EXPECT_EQ(p2m.populatedOfTier(mem::MemType::FastMem), 1u);

    p2m.clear(3);
    EXPECT_FALSE(p2m.populated(3));
    EXPECT_EQ(p2m.populatedCount(), 0u);
    EXPECT_EQ(p2m.populatedOfTier(mem::MemType::FastMem), 0u);
}

TEST(P2m, RetargetMovesTierAccounting)
{
    P2m p2m(10);
    p2m.set(1, 100, mem::MemType::SlowMem);
    p2m.set(1, 200, mem::MemType::FastMem); // migration retarget
    EXPECT_EQ(p2m.populatedCount(), 1u);
    EXPECT_EQ(p2m.populatedOfTier(mem::MemType::SlowMem), 0u);
    EXPECT_EQ(p2m.populatedOfTier(mem::MemType::FastMem), 1u);
    EXPECT_EQ(p2m.mfnOf(1), 200u);
}

TEST(P2m, OutOfRangePanics)
{
    P2m p2m(4);
    EXPECT_DEATH(p2m.set(4, 1, mem::MemType::FastMem), "out of P2M");
    EXPECT_DEATH(p2m.clear(0), "unmapped");
}

} // namespace
