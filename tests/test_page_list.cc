/**
 * @file
 * Intrusive PageList: push/pop/remove semantics, link integrity,
 * and double-insertion detection.
 */

#include <gtest/gtest.h>

#include "guestos/page.hh"

namespace {

using namespace hos::guestos;

struct PageListFixture : ::testing::Test
{
    PageArray pages{64};
    PageList list{pages, listOther};
};

TEST_F(PageListFixture, PushFrontPopFrontIsLifo)
{
    list.pushFront(1);
    list.pushFront(2);
    list.pushFront(3);
    EXPECT_EQ(list.size(), 3u);
    EXPECT_EQ(list.popFront(), 3u);
    EXPECT_EQ(list.popFront(), 2u);
    EXPECT_EQ(list.popFront(), 1u);
    EXPECT_TRUE(list.empty());
    EXPECT_EQ(list.popFront(), invalidGpfn);
}

TEST_F(PageListFixture, PushBackPopFrontIsFifo)
{
    for (Gpfn p : {5, 6, 7})
        list.pushBack(p);
    EXPECT_EQ(list.popFront(), 5u);
    EXPECT_EQ(list.popFront(), 6u);
    EXPECT_EQ(list.popFront(), 7u);
}

TEST_F(PageListFixture, RemoveFromMiddle)
{
    for (Gpfn p : {1, 2, 3, 4, 5})
        list.pushBack(p);
    list.remove(3);
    EXPECT_EQ(list.size(), 4u);
    EXPECT_EQ(list.popFront(), 1u);
    EXPECT_EQ(list.popFront(), 2u);
    EXPECT_EQ(list.popFront(), 4u);
    EXPECT_EQ(list.popFront(), 5u);
}

TEST_F(PageListFixture, RemoveHeadAndTail)
{
    for (Gpfn p : {1, 2, 3})
        list.pushBack(p);
    list.remove(1);
    list.remove(3);
    EXPECT_EQ(list.head(), 2u);
    EXPECT_EQ(list.tail(), 2u);
    EXPECT_EQ(list.size(), 1u);
}

TEST_F(PageListFixture, MoveToFront)
{
    for (Gpfn p : {1, 2, 3})
        list.pushBack(p);
    list.moveToFront(3);
    EXPECT_EQ(list.head(), 3u);
    EXPECT_EQ(list.tail(), 2u);
}

TEST_F(PageListFixture, MembershipTagTracking)
{
    list.pushBack(9);
    EXPECT_TRUE(list.contains(9));
    EXPECT_FALSE(list.contains(8));
    list.remove(9);
    EXPECT_FALSE(list.contains(9));
    EXPECT_EQ(pages.page(9).on_list(), listNone);
}

TEST_F(PageListFixture, DoubleInsertPanics)
{
    list.pushBack(4);
    EXPECT_DEATH(list.pushBack(4), "already on list");
}

TEST_F(PageListFixture, RemoveForeignPanics)
{
    PageList other(pages, listIo);
    other.pushBack(4);
    EXPECT_DEATH(list.remove(4), "on list");
}

} // namespace
