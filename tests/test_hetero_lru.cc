/**
 * @file
 * HeteroOS-LRU: tier demotion keeps pages usable, eager write-back
 * eviction, unmap demotion, never-touched protection, and direct
 * reclaim.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

struct HeteroLruFixture : ::testing::Test
{
    std::unique_ptr<GuestKernel> kernel =
        test::standaloneGuest(8 * mem::mib, 64 * mem::mib);
    AddressSpace *as = nullptr;

    void
    SetUp() override
    {
        as = &kernel->createProcess("proc");
        // Leave boot time: reclaim is disabled at tick 0 by design.
        kernel->events().runUntil(sim::milliseconds(1));
    }

    Gpfn
    fastAnonPage()
    {
        const auto va =
            as->mmap(mem::pageSize, VmaKind::Anon, MemHint::FastMem);
        const Gpfn pfn = as->touch(va, true);
        EXPECT_EQ(kernel->pageMeta(pfn).mem_type(),
                  mem::MemType::FastMem);
        // Mark it used once so the never-touched guard doesn't apply.
        kernel->pageMeta(pfn).setLastTouch(1);
        return pfn;
    }
};

TEST_F(HeteroLruFixture, AnonDemotionKeepsMappingUsable)
{
    const Gpfn pfn = fastAnonPage();
    const std::uint64_t va = kernel->pageMeta(pfn).vaddr();
    ASSERT_EQ(kernel->heteroLru().demotePage(pfn), 1u);

    auto now = as->translate(va);
    ASSERT_TRUE(now.has_value());
    EXPECT_NE(*now, pfn);
    EXPECT_EQ(kernel->pageMeta(*now).mem_type(), mem::MemType::SlowMem);
    EXPECT_EQ(kernel->pageMeta(*now).vaddr(), va);
    EXPECT_FALSE(kernel->pageMeta(pfn).allocated());
}

TEST_F(HeteroLruFixture, CacheDemotionStaysCached)
{
    const FileId f = kernel->pageCache().createFile(mem::mib);
    auto r = kernel->pageCache().read(f, 0, 4 * mem::kib,
                                      MemHint::FastMem);
    ASSERT_EQ(r.pages.size(), 1u);
    const Gpfn pfn = r.pages[0];
    ASSERT_EQ(kernel->pageMeta(pfn).mem_type(), mem::MemType::FastMem);

    ASSERT_EQ(kernel->heteroLru().demotePage(pfn), 1u);
    auto again = kernel->pageCache().read(f, 0, 4 * mem::kib);
    EXPECT_EQ(again.pages_missed, 0u) << "still cached after demotion";
    EXPECT_EQ(kernel->pageMeta(again.pages[0]).mem_type(),
              mem::MemType::SlowMem);
}

TEST_F(HeteroLruFixture, DirtyCachePagesAreNotDemoted)
{
    const FileId f = kernel->pageCache().createFile(mem::mib);
    auto w = kernel->pageCache().write(f, 0, 4 * mem::kib,
                                       MemHint::FastMem);
    EXPECT_EQ(kernel->heteroLru().demotePage(w.pages[0]), 0u);
}

TEST_F(HeteroLruFixture, SlowPagesAreNotDemoted)
{
    const auto va =
        as->mmap(mem::pageSize, VmaKind::Anon, MemHint::SlowMem);
    const Gpfn pfn = as->touch(va, true);
    EXPECT_EQ(kernel->heteroLru().demotePage(pfn), 0u);
}

TEST_F(HeteroLruFixture, ReclaimFreesFastMem)
{
    // Fill FastMem with touched, unreferenced anon pages.
    std::vector<Gpfn> pfns;
    const auto va = as->mmap(4 * mem::mib, VmaKind::Anon,
                             MemHint::FastMem);
    for (std::uint64_t off = 0; off < 4 * mem::mib;
         off += mem::pageSize) {
        const Gpfn pfn = as->touch(va + off, true);
        kernel->pageMeta(pfn).setLastTouch(1);
        kernel->pageMeta(pfn).setReferenced(false);
        pfns.push_back(pfn);
    }
    auto *fast = kernel->nodeFor(mem::MemType::FastMem);
    const auto before = kernel->effectiveFreePages(*fast);
    const auto freed = kernel->heteroLru().reclaimFastMem(128);
    EXPECT_GE(freed, 128u);
    EXPECT_GT(kernel->effectiveFreePages(*fast), before);
    EXPECT_GT(kernel->heteroLru().stats().demoted_anon, 0u);
}

TEST_F(HeteroLruFixture, ReclaimRefusesAtBootTime)
{
    auto fresh = test::standaloneGuest(8 * mem::mib, 64 * mem::mib);
    EXPECT_EQ(fresh->heteroLru().reclaimFastMem(64), 0u)
        << "no hotness information exists at boot";
}

TEST_F(HeteroLruFixture, NeverTouchedPagesAreVictimsOfLastResort)
{
    // Half the candidates were used once (cold but proven), half were
    // never touched since allocation. Reclaim must prefer the former.
    const auto va = as->mmap(128 * mem::pageSize, VmaKind::Anon,
                             MemHint::FastMem);
    std::vector<Gpfn> touched;
    for (int i = 0; i < 128; ++i) {
        const Gpfn pfn = as->touch(va + i * mem::pageSize, true);
        if (i < 64) {
            kernel->pageMeta(pfn).setLastTouch(1);
            touched.push_back(pfn);
        }
    }
    const auto freed = kernel->heteroLru().reclaimFastMem(32);
    EXPECT_GE(freed, 32u);
    // At least some of the proven-cold group was demoted.
    std::uint64_t touched_remaining = 0;
    for (Gpfn pfn : touched) {
        if (kernel->pageMeta(pfn).allocated() &&
            kernel->pageMeta(pfn).mem_type() == mem::MemType::FastMem) {
            ++touched_remaining;
        }
    }
    EXPECT_LT(touched_remaining, touched.size());
}

TEST_F(HeteroLruFixture, WritebackCompletionTriggersEagerDemotion)
{
    // Force the pressure condition so rule 2 demotes immediately.
    auto cfg = kernel->heteroLru().config();
    cfg.fast_low_ratio = 1.01; // everything counts as pressure
    kernel->heteroLru().setConfig(cfg);
    const FileId f = kernel->pageCache().createFile(mem::mib);
    auto w = kernel->pageCache().write(f, 0, 16 * mem::kib,
                                       MemHint::FastMem);
    // Count how many of the written pages sit in FastMem.
    std::uint64_t in_fast = 0;
    for (Gpfn pfn : w.pages) {
        if (kernel->pageMeta(pfn).mem_type() == mem::MemType::FastMem)
            ++in_fast;
    }
    if (in_fast == 0)
        GTEST_SKIP() << "writes landed in SlowMem; nothing to check";
    kernel->pageCache().writeback(100);
    // Rule 2: the cleaned pages left FastMem (demoted, still cached).
    const FileId f2 = f;
    auto again = kernel->pageCache().read(f2, 0, 16 * mem::kib);
    for (Gpfn pfn : again.pages) {
        EXPECT_EQ(kernel->pageMeta(pfn).mem_type(),
                  mem::MemType::SlowMem);
    }
}

TEST_F(HeteroLruFixture, DirectReclaimDropsCleanCache)
{
    const FileId f = kernel->pageCache().createFile(8 * mem::mib);
    kernel->pageCache().read(f, 0, 4 * mem::mib);
    const auto cached = kernel->pageCache().cachedPages();
    ASSERT_GT(cached, 0u);
    const auto freed = kernel->heteroLru().directReclaim(64);
    EXPECT_GE(freed, 64u);
    EXPECT_LT(kernel->pageCache().cachedPages(), cached);
}

} // namespace
