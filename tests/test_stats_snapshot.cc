/**
 * @file
 * Stats snapshots: registry lookup/refresh, the periodic sampling
 * daemon's cadence against the event queue, and JSON export.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "test_helpers.hh"
#include "trace/stats_snapshot.hh"

namespace {

using namespace hos::sim;
using hos::trace::StatsSnapshotter;

TEST(StatRegistry, FindAndRemove)
{
    StatGroup a("alpha"), b("beta");
    StatRegistry reg;
    reg.add(&a);
    reg.add(&b);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.find("alpha"), &a);
    EXPECT_EQ(reg.find("gamma"), nullptr);
    reg.remove("alpha");
    EXPECT_EQ(reg.find("alpha"), nullptr);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(StatRegistry, RefreshHooksRunOnDump)
{
    StatGroup g("live");
    std::uint64_t source = 0;
    StatRegistry reg;
    reg.add(&g, [&] { g.counter("sampled").set(source); });

    source = 7;
    const std::string dump = reg.dumpAll();
    EXPECT_NE(dump.find("live.sampled 7"), std::string::npos);
}

TEST(StatsSnapshotter, CadenceMatchesEventQueue)
{
    StatGroup g("g");
    std::uint64_t ticks_seen = 0;
    StatRegistry reg;
    reg.add(&g, [&] { g.counter("refreshes").set(++ticks_seen); });

    EventQueue q;
    StatsSnapshotter snap(reg, q, milliseconds(10));
    snap.start();
    q.runUntil(milliseconds(95));

    // Samples at 10, 20, ..., 90 ms — the 100 ms one hasn't fired.
    ASSERT_EQ(snap.snapshots().size(), 9u);
    for (std::size_t i = 0; i < snap.snapshots().size(); ++i) {
        EXPECT_EQ(snap.snapshots()[i].t, milliseconds(10) * (i + 1));
    }
    EXPECT_EQ(ticks_seen, 9u);
}

TEST(StatsSnapshotter, SnapshotsCaptureLiveValues)
{
    StatGroup g("mem");
    std::int64_t occupancy = 0;
    StatRegistry reg;
    reg.add(&g, [&] { g.gauge("occupancy").set(occupancy); });

    EventQueue q;
    StatsSnapshotter snap(reg, q, milliseconds(5));

    occupancy = 100;
    snap.sampleNow();
    occupancy = 250;
    snap.sampleNow();

    ASSERT_EQ(snap.snapshots().size(), 2u);
    const auto &first = snap.snapshots()[0].values;
    const auto &second = snap.snapshots()[1].values;
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].first, "mem.occupancy");
    EXPECT_EQ(first[0].second, 100.0);
    EXPECT_EQ(second[0].second, 250.0);
}

TEST(StatsSnapshotter, JsonExportRoundTrip)
{
    StatGroup g("grp");
    StatRegistry reg;
    std::uint64_t n = 0;
    reg.add(&g, [&] { g.counter("events").set(n += 3); });

    EventQueue q;
    StatsSnapshotter snap(reg, q, milliseconds(20));
    snap.start();
    q.runUntil(milliseconds(50)); // snapshots at 20 and 40 ms

    std::ostringstream os;
    snap.writeJson(os);
    const std::string json = os.str();

    EXPECT_TRUE(hos::test::jsonWellFormed(json));
    EXPECT_NE(json.find("\"num_snapshots\":2"), std::string::npos);
    EXPECT_NE(json.find("\"grp.events\":3"), std::string::npos);
    EXPECT_NE(json.find("\"grp.events\":6"), std::string::npos);
    EXPECT_NE(json.find("\"t_ms\":20"), std::string::npos);
}

TEST(StatsSnapshotter, GuestKernelSyncStatsPopulatesGroup)
{
    auto kernel = hos::test::standaloneGuest();
    hos::guestos::AllocRequest req;
    req.type = hos::guestos::PageType::Anon;
    for (int i = 0; i < 100; ++i)
        kernel->allocPage(req);

    kernel->syncStats();
    auto &stats = kernel->stats();
    EXPECT_EQ(stats.findCounter("alloc.requests").value(), 100u);
    EXPECT_EQ(stats
                  .findCounter(std::string("alloc.") +
                               hos::guestos::pageTypeName(
                                   hos::guestos::PageType::Anon))
                  .value(),
              100u);
    EXPECT_TRUE(stats.hasGauge("node.FastMem.free_pages"));
    EXPECT_TRUE(stats.hasCounter("overhead_ns.migration"));
}

} // namespace
