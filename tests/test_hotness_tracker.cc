/**
 * @file
 * PteScanTracker: full-VM sweeps, heat EWMA, hot thresholding,
 * OS-guided scanning with exception lists, cost charging, and the
 * Equation 1 adaptive interval (base-class behavior shared by every
 * HotnessTracker backend).
 */

#include <gtest/gtest.h>

#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "vmm/hotness_pte.hh"
#include "vmm/vmm.hh"

namespace {

using namespace hos;

struct TrackerFixture : ::testing::Test
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> hypervisor;
    std::unique_ptr<guestos::GuestKernel> guest;
    vmm::VmId id = 0;

    void
    SetUp() override
    {
        machine.addNode(mem::MemType::FastMem, mem::dramSpec(8 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(32 * mem::mib));
        hypervisor = std::make_unique<vmm::Vmm>(machine);

        guestos::GuestConfig cfg;
        cfg.name = "guest";
        cfg.cpus = 2;
        cfg.nodes = {{mem::MemType::FastMem, 8 * mem::mib, 8 * mem::mib},
                     {mem::MemType::SlowMem, 32 * mem::mib,
                      32 * mem::mib}};
        guest = std::make_unique<guestos::GuestKernel>(cfg);
        id = hypervisor->registerVm(*guest, {});
    }

    /** Allocate n anon pages and return their gpfns. */
    std::vector<guestos::Gpfn>
    allocPages(std::uint64_t n, guestos::MemHint hint)
    {
        auto &as = guest->createProcess("p");
        const auto va =
            as.mmap(n * mem::pageSize, guestos::VmaKind::Anon, hint);
        std::vector<guestos::Gpfn> out;
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(as.touch(va + i * mem::pageSize, true));
        return out;
    }
};

TEST_F(TrackerFixture, HeatRisesOnRepeatedAccess)
{
    auto pages = allocPages(64, guestos::MemHint::SlowMem);
    vmm::HotnessConfig cfg;
    cfg.pages_per_scan = 100000;
    vmm::PteScanTracker tracker(hypervisor->vm(id), cfg);

    for (int round = 0; round < 3; ++round) {
        for (auto pfn : pages)
            guest->pageMeta(pfn).setPteAccessed(true);
        auto res = tracker.scanOnce();
        EXPECT_GE(res.accessed, 64u);
        if (round >= 1) {
            EXPECT_GE(res.hot.size(), 64u)
                << "two consecutive hits make a page hot";
        }
    }
}

TEST_F(TrackerFixture, ColdPagesNeverGetHot)
{
    allocPages(64, guestos::MemHint::SlowMem);
    vmm::HotnessConfig cfg;
    cfg.pages_per_scan = 100000;
    vmm::PteScanTracker tracker(hypervisor->vm(id), cfg);
    for (int round = 0; round < 4; ++round) {
        auto res = tracker.scanOnce();
        EXPECT_EQ(res.hot.size(), 0u);
    }
}

TEST_F(TrackerFixture, ScanChargesCostToTheVm)
{
    allocPages(256, guestos::MemHint::SlowMem);
    vmm::PteScanTracker tracker(hypervisor->vm(id), {});
    const auto before =
        guest->overheadTotal(guestos::OverheadKind::HotScan);
    auto res = tracker.scanOnce();
    EXPECT_GT(res.cost, 0u);
    EXPECT_EQ(guest->overheadTotal(guestos::OverheadKind::HotScan),
              before + res.cost);
}

TEST_F(TrackerFixture, BatchLimitSweepsWithCursor)
{
    allocPages(300, guestos::MemHint::SlowMem);
    vmm::HotnessConfig cfg;
    cfg.pages_per_scan = 100;
    vmm::PteScanTracker tracker(hypervisor->vm(id), cfg);
    auto r1 = tracker.scanOnce();
    EXPECT_EQ(r1.pages_scanned, 100u);
    tracker.scanOnce();
    tracker.scanOnce();
    EXPECT_GE(tracker.totalScanned(), 300u);
}

TEST_F(TrackerFixture, GuidedScanHonorsRangesAndExceptions)
{
    auto pages = allocPages(64, guestos::MemHint::SlowMem);
    // Also read file data so exception-listed cache pages exist.
    const auto f = guest->pageCache().createFile(mem::mib);
    guest->pageCache().read(f, 0, 64 * mem::kib);

    vmm::SharedRing ring;
    vmm::TrackingDirectives d;
    guest->process(0).forEachVma([&](const guestos::Vma &vma) {
        d.ranges.push_back({0, vma.start, vma.end()});
    });
    d.exception = [](const guestos::PageRef &p) {
        return guestos::isShortLivedIo(p.type());
    };
    ring.publishDirectives(std::move(d));

    vmm::HotnessConfig cfg;
    cfg.pages_per_scan = 100000;
    vmm::PteScanTracker tracker(hypervisor->vm(id), cfg);
    tracker.guideWith(&ring);

    for (auto pfn : pages)
        guest->pageMeta(pfn).setPteAccessed(true);
    auto res = tracker.scanOnce();
    // Only the anon VMA's 64 pages are visited; cache pages are not.
    EXPECT_EQ(res.pages_scanned, 64u);
    EXPECT_GE(res.accessed, 64u);
}

TEST_F(TrackerFixture, AdaptiveIntervalFollowsEquationOne)
{
    vmm::HotnessConfig cfg;
    cfg.adaptive = true;
    cfg.interval = sim::milliseconds(100);
    vmm::PteScanTracker tracker(hypervisor->vm(id), cfg);
    auto &vm = hypervisor->vm(id);

    // Warm up the epoch-miss baseline.
    vm.reportLlcMisses(1'000'000);
    tracker.adaptInterval();
    vm.reportLlcMisses(2'000'000); // epoch misses: 1M
    tracker.adaptInterval();

    // Rising miss rate: next epoch has 2M misses (+100%).
    vm.reportLlcMisses(4'000'000);
    tracker.adaptInterval();
    EXPECT_LT(tracker.interval(), sim::milliseconds(100))
        << "rising misses shrink the interval";

    const auto shrunk = tracker.interval();
    // Falling miss rate: next epoch has 0.2M misses.
    vm.reportLlcMisses(4'200'000);
    tracker.adaptInterval();
    EXPECT_GT(tracker.interval(), shrunk)
        << "falling misses lengthen the interval";
}

TEST_F(TrackerFixture, AdaptiveIntervalClamps)
{
    vmm::HotnessConfig cfg;
    cfg.adaptive = true;
    cfg.interval = sim::milliseconds(100);
    cfg.min_interval = sim::milliseconds(50);
    vmm::PteScanTracker tracker(hypervisor->vm(id), cfg);
    auto &vm = hypervisor->vm(id);
    std::uint64_t cum = 1000;
    vm.reportLlcMisses(cum);
    tracker.adaptInterval();
    for (int i = 0; i < 10; ++i) {
        cum += 1000ull << i; // exploding miss rate
        vm.reportLlcMisses(cum);
        tracker.adaptInterval();
    }
    EXPECT_GE(tracker.interval(), cfg.min_interval);
}

} // namespace
