/**
 * @file
 * Fairness policies: DRF dominant shares, weighted DRF protection of
 * a dominant resource, max-min's single-resource failure mode, and
 * DRF's strategy-proofness property (lying does not pay).
 */

#include <gtest/gtest.h>

#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "vmm/ballooning.hh"
#include "vmm/drf.hh"
#include "vmm/max_min.hh"
#include "vmm/vmm.hh"

namespace {

using namespace hos;

struct FairnessFixture : ::testing::Test
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> vmm_;
    std::vector<std::unique_ptr<guestos::GuestKernel>> guests;

    void
    SetUp() override
    {
        machine.addNode(mem::MemType::FastMem,
                        mem::dramSpec(16 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(32 * mem::mib));
        vmm_ = std::make_unique<vmm::Vmm>(machine);
    }

    /** Register a VM with min/max (in MiB) per tier. */
    vmm::VmId
    addVm(std::uint64_t fast_min_mb, std::uint64_t slow_min_mb,
          std::uint64_t fast_max_mb = 16, std::uint64_t slow_max_mb = 32)
    {
        guestos::GuestConfig cfg;
        cfg.name = "vm" + std::to_string(guests.size());
        cfg.cpus = 1;
        cfg.nodes = {{mem::MemType::FastMem, fast_max_mb * mem::mib,
                      fast_min_mb * mem::mib},
                     {mem::MemType::SlowMem, slow_max_mb * mem::mib,
                      slow_min_mb * mem::mib}};
        guests.push_back(std::make_unique<guestos::GuestKernel>(cfg));

        vmm::VmConfig vcfg;
        vcfg.reservations = {
            {mem::MemType::FastMem, mem::bytesToPages(fast_min_mb * mem::mib),
             mem::bytesToPages(fast_max_mb * mem::mib), 2.0},
            {mem::MemType::SlowMem, mem::bytesToPages(slow_min_mb * mem::mib),
             mem::bytesToPages(slow_max_mb * mem::mib), 1.0}};
        return vmm_->registerVm(*guests.back(), vcfg);
    }
};

TEST_F(FairnessFixture, DominantShareComputation)
{
    const auto a = addVm(8, 4); // fast share 0.5*2=1.0 dominant
    const auto b = addVm(2, 16); // slow share 0.5 dominant
    auto &va = vmm_->vm(a);
    auto &vb = vmm_->vm(b);
    EXPECT_NEAR(vmm::DrfFairness::resourceShare(*vmm_, va,
                                                mem::MemType::FastMem),
                1.0, 0.01);
    EXPECT_NEAR(vmm::DrfFairness::dominantShare(*vmm_, va), 1.0, 0.01);
    EXPECT_NEAR(vmm::DrfFairness::dominantShare(*vmm_, vb), 0.5, 0.01);
}

TEST_F(FairnessFixture, OvercommitAccounting)
{
    const auto a = addVm(4, 8);
    auto &va = vmm_->vm(a);
    EXPECT_EQ(vmm::overcommitFrames(va, mem::MemType::FastMem), 0u);
    guests[0]->balloon().requestPages(mem::MemType::FastMem, 100);
    EXPECT_EQ(vmm::overcommitFrames(va, mem::MemType::FastMem), 100u);
    EXPECT_EQ(vmm::totalOvercommitFrames(va), 100u);
}

TEST_F(FairnessFixture, MaxMinDrainsNeighbourSlowMem)
{
    vmm_->setFairness(std::make_unique<vmm::MaxMinFairness>());
    // Victim holds SlowMem above its summed minimum.
    const auto victim = addVm(2, 8, 16, 32);
    guests[0]->balloon().requestPages(mem::MemType::SlowMem,
                                      mem::bytesToPages(16 * mem::mib));
    auto &vv = vmm_->vm(victim);
    const auto victim_slow_before = vv.framesOf(mem::MemType::SlowMem);

    // A hungry neighbour wants more SlowMem than remains free.
    addVm(2, 8, 16, 32);
    const auto got = guests[1]->balloon().requestPages(
        mem::MemType::SlowMem, mem::bytesToPages(12 * mem::mib));
    EXPECT_GT(got, 0u);
    EXPECT_LT(vv.framesOf(mem::MemType::SlowMem), victim_slow_before)
        << "single-resource max-min balloons the neighbour's SlowMem";
}

TEST_F(FairnessFixture, DrfProtectsDominantResource)
{
    vmm_->setFairness(std::make_unique<vmm::DrfFairness>());
    // The victim's dominant resource is SlowMem; its holding stays at
    // its guaranteed minimum even under pressure.
    const auto victim = addVm(0, 12, 4, 16);
    auto &vv = vmm_->vm(victim);
    const auto guaranteed = vv.minPages(mem::MemType::SlowMem);

    // Hungry VM with a far higher dominant share (FastMem-heavy).
    addVm(14, 4, 16, 32);
    guests[1]->balloon().requestPages(mem::MemType::SlowMem,
                                      mem::bytesToPages(32 * mem::mib));
    EXPECT_GE(vv.framesOf(mem::MemType::SlowMem), guaranteed)
        << "DRF never reclaims below the per-type guarantee";
}

TEST_F(FairnessFixture, DrfStrategyProofness)
{
    // Property: a VM that asks for more than it can use ends up with
    // a higher dominant share and becomes the preferred reclaim
    // victim — lying does not improve its final holdings when a
    // competitor arrives.
    vmm_->setFairness(std::make_unique<vmm::DrfFairness>());
    const auto liar = addVm(2, 4, 16, 32);
    // The liar grabs all the FastMem it can (far beyond its min).
    guests[0]->balloon().requestPages(mem::MemType::FastMem,
                                      mem::bytesToPages(16 * mem::mib));
    auto &vl = vmm_->vm(liar);
    const auto liar_peak = vl.framesOf(mem::MemType::FastMem);

    // An honest VM requests its fair share.
    addVm(2, 4, 16, 32);
    const auto honest_got = guests[1]->balloon().requestPages(
        mem::MemType::FastMem, mem::bytesToPages(6 * mem::mib));

    EXPECT_GT(honest_got, 0u) << "the honest VM is served";
    EXPECT_LT(vl.framesOf(mem::MemType::FastMem), liar_peak)
        << "the liar's overcommit was the first thing reclaimed";
    EXPECT_GE(vl.framesOf(mem::MemType::FastMem),
              vl.minPages(mem::MemType::FastMem));
}

TEST_F(FairnessFixture, DrfParetoEfficiencyFreeMemoryIsGranted)
{
    vmm_->setFairness(std::make_unique<vmm::DrfFairness>());
    addVm(2, 4);
    // Free memory exists: any request is granted (no artificial
    // withholding — Pareto efficiency).
    const auto got = guests[0]->balloon().requestPages(
        mem::MemType::FastMem, 128);
    EXPECT_EQ(got, 128u);
}

} // namespace
