/**
 * @file
 * hos::prof — span profiler, attribution ledger, exporters, diff.
 *
 * The load-bearing test is LedgerMatchesKernelCounters: for every
 * golden-matrix scenario, the profiler's per-kind sim-time sums must
 * equal the kernel's OverheadKind counters bit for bit — attribution
 * may slice costs by span, it must never invent or lose a
 * nanosecond. The rest pins the path algebra, the serialization
 * round-trip, the collapsed-stack and Chrome span exports, and the
 * profdiff regression verdicts both ways.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "guestos/kernel.hh"
#include "prof/diff.hh"
#include "prof/prof.hh"
#include "prof/report.hh"
#include "sim/json.hh"
#include "trace/exporters.hh"
#include "trace/trace.hh"

namespace {

using namespace hos;
using prof::ProfileReport;
using prof::Profiler;
using prof::SpanKind;

/**
 * Pin the cost-kind label table regardless of test order (first
 * registration wins; the content matches the kernel's table, so a
 * kernel constructed earlier registers the same labels).
 */
void
registerKindNames()
{
    static constexpr const char *names[] = {
        "alloc", "reclaim", "migration", "hotscan",
        "balloon", "writeback", "io", "swap"};
    prof::registerCostKindNames(names, 8);
}

/** A small hand-built ledger used by the exporter/diff tests. */
ProfileReport
sampleReport()
{
    ProfileReport r;
    r.entries.push_back(
        {"migration_epoch", 0, "-", "-", 2, 0, 0});
    r.entries.push_back(
        {"migration_epoch;batch_copy", 0, "fast", "migration", 4,
         120000, 0});
    r.entries.push_back(
        {"migration_epoch;tlb_shootdown", 0, "fast", "migration", 4,
         8000, 0});
    r.entries.push_back(
        {"scan_pass", 1, "-", "hotscan", 7, 56000, 0});
    return r;
}

// --- Path tree and attribution (direct Profiler driving) -------------

TEST(ProfPaths, NestedSpansProduceJoinedPaths)
{
    registerKindNames();
    Profiler p;
    p.beginSpan(SpanKind::MigrationEpoch, 0, 0, prof::noTier);
    p.beginSpan(SpanKind::BatchCopy, 10, 0, 0);
    p.recordCharge(2, 500); // "migration" under the inner span
    p.endSpan(20);
    p.recordCharge(2, 300); // under the outer span
    p.endSpan(30);
    p.recordCharge(2, 100); // outside every span

    const auto report = p.report();
    auto find = [&](const std::string &path) -> const auto * {
        for (const auto &e : report.entries)
            if (e.path == path && e.kind == "migration")
                return &e;
        return static_cast<const prof::ProfileEntry *>(nullptr);
    };
    const auto *inner = find("migration_epoch;batch_copy");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->sim_ns, 500u);
    EXPECT_EQ(inner->tier, "fast");
    const auto *outer = find("migration_epoch");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->sim_ns, 300u);
    const auto *stray = find("(unattributed)");
    ASSERT_NE(stray, nullptr);
    EXPECT_EQ(stray->sim_ns, 100u);

    EXPECT_EQ(report.simTotalForKind("migration"), 900u);
    EXPECT_EQ(report.simGrandTotal(), 900u);
}

TEST(ProfPaths, ReenteredSpansShareOneNode)
{
    Profiler p;
    for (int i = 0; i < 3; ++i) {
        p.beginSpan(SpanKind::ScanPass, i * 10, 0, prof::noTier);
        p.endSpan(i * 10 + 5);
    }
    const auto report = p.report();
    std::size_t scan_rows = 0;
    for (const auto &e : report.entries)
        if (e.path == "scan_pass") {
            ++scan_rows;
            EXPECT_EQ(e.count, 3u); // one row, three occurrences
        }
    EXPECT_EQ(scan_rows, 1u);
    EXPECT_EQ(p.spansOpened(), 3u);
    EXPECT_EQ(p.spansClosed(), 3u);
    EXPECT_EQ(p.depth(), 0u);
}

// --- The cross-check: ledger vs kernel overhead counters -------------

TEST(ProfLedger, LedgerMatchesKernelCounters)
{
    if (!prof::profilingCompiled)
        GTEST_SKIP() << "spans compiled out (HOS_PROF=off)";

    for (const core::Approach a :
         {core::Approach::HeteroLru, core::Approach::VmmExclusive,
          core::Approach::Coordinated}) {
        core::Scenario s = core::Scenario{}
                               .withApp(workload::AppId::GraphChi)
                               .withApproach(a)
                               .withScale(0.02)
                               .withCapacity(24 * mem::mib,
                                             96 * mem::mib)
                               .withSeed(3)
                               .withProfiling();
        auto sys = core::systemFor(s);
        auto &slot = sys->slot(0);
        sys->runOne(slot, workload::makeApp(s.app, s.scale));

        const auto report = sys->profiler().report();
        std::uint64_t kernel_total = 0;
        for (int i = 0;
             i < static_cast<int>(guestos::numOverheadKinds); ++i) {
            const auto kind = static_cast<guestos::OverheadKind>(i);
            const auto counter = static_cast<std::uint64_t>(
                slot.kernel->overheadTotal(kind));
            EXPECT_EQ(report.simTotalForKind(
                          guestos::overheadKindName(kind)),
                      counter)
                << s.label() << ": ledger diverges for "
                << guestos::overheadKindName(kind);
            kernel_total += counter;
        }
        EXPECT_EQ(report.simGrandTotal(), kernel_total) << s.label();
    }
}

// --- Serialization ---------------------------------------------------

TEST(ProfReport, JsonRoundTripIsLossless)
{
    const ProfileReport original = sampleReport();
    std::ostringstream os;
    {
        sim::JsonWriter w(os);
        prof::writeProfileReport(w, original);
    }
    std::string error;
    const auto doc = sim::jsonParse(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const auto parsed = prof::profileReportFromJson(*doc, &error);
    ASSERT_TRUE(error.empty()) << error;

    ASSERT_EQ(parsed.entries.size(), original.entries.size());
    for (std::size_t i = 0; i < parsed.entries.size(); ++i) {
        const auto &a = original.entries[i];
        const auto &b = parsed.entries[i];
        EXPECT_EQ(a.path, b.path);
        EXPECT_EQ(a.vm, b.vm);
        EXPECT_EQ(a.tier, b.tier);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.count, b.count);
        EXPECT_EQ(a.sim_ns, b.sim_ns);
    }
}

TEST(ProfReport, CollapsedStackGolden)
{
    std::ostringstream os;
    prof::writeCollapsed(sampleReport(), os);
    // Span-occurrence rows (kind "-") are skipped: they carry no cost
    // and would double-count the flame widths.
    EXPECT_EQ(os.str(),
              "vm0;migration_epoch;batch_copy;migration 120000\n"
              "vm0;migration_epoch;tlb_shootdown;migration 8000\n"
              "vm1;scan_pass;hotscan 56000\n");
}

// --- Chrome span export ----------------------------------------------

TEST(ProfTrace, ChromeExportNestsBeginEndPairs)
{
    if (!prof::profilingCompiled)
        GTEST_SKIP() << "spans compiled out (HOS_PROF=off)";

    trace::Tracer tracer;
    tracer.enable(static_cast<std::uint32_t>(trace::Category::All));
    trace::ScopedSink sink(&tracer);

    Profiler p;
    prof::ScopedProfiler guard(&p);
    sim::EventQueue q;
    {
        HOS_PROF_SPAN(epoch, SpanKind::MigrationEpoch, q, 2);
        HOS_PROF_SPAN(copy, SpanKind::BatchCopy, q, 2, 0);
    }

    std::ostringstream os;
    trace::writeChromeJson(tracer, os);
    std::string error;
    const auto doc = sim::jsonParse(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const auto *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Expect B(migration_epoch) B(batch_copy) E E, properly nested.
    std::vector<std::pair<std::string, std::string>> spans;
    for (const auto &e : events->array) {
        const auto *ph = e.find("ph");
        if (ph == nullptr)
            continue;
        const std::string phase = ph->asString("");
        if (phase != "B" && phase != "E")
            continue;
        const auto *name = e.find("name");
        ASSERT_NE(name, nullptr);
        spans.emplace_back(phase, name->asString(""));
    }
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(spans[0],
              (std::pair<std::string, std::string>{
                  "B", "migration_epoch"}));
    EXPECT_EQ(spans[1],
              (std::pair<std::string, std::string>{"B", "batch_copy"}));
    EXPECT_EQ(spans[2].first, "E");
    EXPECT_EQ(spans[3].first, "E");
}

// --- Diff / regression gate ------------------------------------------

TEST(ProfDiff, SelfDiffIsQuiet)
{
    const ProfileReport r = sampleReport();
    const auto diff = prof::diffProfiles(r, r);
    EXPECT_TRUE(diff.identical());
    EXPECT_FALSE(prof::hasRegression(diff, 0.0));
    EXPECT_EQ(diff.before_total, diff.after_total);
}

TEST(ProfDiff, InjectedRegressionIsDetected)
{
    const ProfileReport before = sampleReport();
    ProfileReport after = before;
    for (auto &e : after.entries)
        if (e.kind == "migration") // +10% on every migration cell
            e.sim_ns += e.sim_ns / 10;

    const auto diff = prof::diffProfiles(before, after);
    EXPECT_FALSE(diff.identical());
    EXPECT_TRUE(prof::hasRegression(diff, 5.0));
    EXPECT_FALSE(prof::hasRegression(diff, 15.0));
    EXPECT_NEAR(diff.maxKindGrowthPct(), 10.0, 0.2);

    // The shrunk direction is not a regression.
    const auto improved = prof::diffProfiles(after, before);
    EXPECT_FALSE(prof::hasRegression(improved, 5.0));
}

TEST(ProfDiff, DisjointCellsCompareAgainstZero)
{
    ProfileReport before = sampleReport();
    ProfileReport after = sampleReport();
    after.entries.push_back(
        {"drf_round", 0, "-", "balloon", 1, 999, 0});

    const auto diff = prof::diffProfiles(before, after);
    EXPECT_FALSE(diff.identical());
    EXPECT_TRUE(prof::hasRegression(diff, 50.0)); // 0 -> 999 grows
}

// --- Merging (the sweep-aggregate path) ------------------------------

TEST(ProfReport, MergeAccumulatesMatchingCells)
{
    ProfileReport dst = sampleReport();
    prof::mergeInto(dst, sampleReport());
    ASSERT_EQ(dst.entries.size(), sampleReport().entries.size());
    EXPECT_EQ(dst.simTotalForKind("migration"), 2u * 128000u);
    EXPECT_EQ(dst.simTotalForKind("hotscan"), 2u * 56000u);
}

} // namespace
