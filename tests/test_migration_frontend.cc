/**
 * @file
 * MigrationFrontend: the guest-side page-state validity checks the
 * paper credits to guest-controlled migration (Section 4.1) —
 * released pages, dirty I/O pages, pinned pages — plus successful
 * promotion/demotion and cost charging.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

struct MigrationFixture : ::testing::Test
{
    std::unique_ptr<GuestKernel> kernel =
        test::standaloneGuest(16 * mem::mib, 64 * mem::mib);
    AddressSpace *as = nullptr;

    void
    SetUp() override
    {
        as = &kernel->createProcess("p");
    }
};

TEST_F(MigrationFixture, PromotesSlowAnonPages)
{
    const auto va =
        as->mmap(8 * mem::pageSize, VmaKind::Anon, MemHint::SlowMem);
    std::vector<Gpfn> pfns;
    for (int i = 0; i < 8; ++i)
        pfns.push_back(as->touch(va + i * mem::pageSize, true));

    auto out =
        kernel->migrator().migratePages(pfns, mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 8u);
    for (int i = 0; i < 8; ++i) {
        auto cur = as->translate(va + i * mem::pageSize);
        ASSERT_TRUE(cur.has_value());
        EXPECT_EQ(kernel->pageMeta(*cur).mem_type(),
                  mem::MemType::FastMem);
        EXPECT_EQ(kernel->pageMeta(*cur).lru(), LruState::Active)
            << "promotions land on the active list";
    }
    EXPECT_GT(kernel->overheadTotal(OverheadKind::Migration), 0u);
}

TEST_F(MigrationFixture, SkipsReleasedPages)
{
    const auto va = as->mmap(mem::pageSize, VmaKind::Anon,
                             MemHint::SlowMem);
    const Gpfn pfn = as->touch(va, true);
    as->munmap(va); // page released: the VMM couldn't know
    auto out =
        kernel->migrator().migratePages({pfn}, mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 0u);
    EXPECT_EQ(out.skipped_unmapped, 1u);
}

TEST_F(MigrationFixture, SkipsDirtyIoPages)
{
    const FileId f = kernel->pageCache().createFile(mem::mib);
    auto w = kernel->pageCache().write(f, 0, 4 * mem::kib,
                                       MemHint::SlowMem);
    auto out = kernel->migrator().migratePages(w.pages,
                                               mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 0u);
    EXPECT_EQ(out.skipped_dirty_io, 1u);
}

TEST_F(MigrationFixture, MigratesCleanCachePages)
{
    const FileId f = kernel->pageCache().createFile(mem::mib);
    auto r = kernel->pageCache().read(f, 0, 4 * mem::kib,
                                      MemHint::SlowMem);
    auto out = kernel->migrator().migratePages(r.pages,
                                               mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 1u);
    auto again = kernel->pageCache().read(f, 0, 4 * mem::kib);
    EXPECT_EQ(again.pages_missed, 0u);
    EXPECT_EQ(kernel->pageMeta(again.pages[0]).mem_type(),
              mem::MemType::FastMem);
}

TEST_F(MigrationFixture, SkipsPinnedPages)
{
    const auto c = kernel->slab().createCache("pinned", 512);
    auto obj = kernel->slab().alloc(c, MemHint::SlowMem);
    auto out = kernel->migrator().migratePages({obj.pfn},
                                               mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 0u);
    EXPECT_EQ(out.skipped_pinned, 1u);
}

TEST_F(MigrationFixture, SkipsPagesAlreadyThere)
{
    const auto va = as->mmap(mem::pageSize, VmaKind::Anon,
                             MemHint::FastMem);
    const Gpfn pfn = as->touch(va, true);
    auto out =
        kernel->migrator().migratePages({pfn}, mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 0u);
    EXPECT_EQ(out.attempted, 1u);
}

TEST_F(MigrationFixture, StalePfnAfterReuseIsSkipped)
{
    const auto va = as->mmap(mem::pageSize, VmaKind::Anon,
                             MemHint::SlowMem);
    const Gpfn pfn = as->touch(va, true);
    as->munmap(va);
    // The frame gets reused for a different mapping.
    const auto va2 = as->mmap(mem::pageSize, VmaKind::Anon,
                              MemHint::SlowMem);
    const Gpfn reused = as->touch(va2, true);
    ASSERT_EQ(reused, pfn) << "per-CPU cache reuses the hot frame";
    // Migrating by the stale candidate still works safely: the page
    // is validated against its *current* mapping.
    auto out =
        kernel->migrator().migratePages({pfn}, mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 1u);
    EXPECT_EQ(kernel->pageMeta(*as->translate(va2)).mem_type(),
              mem::MemType::FastMem);
}

} // namespace
