/**
 * @file
 * ResidencyIndex: the incremental per-region per-tier accounting the
 * workload engine reads instead of re-deriving placement by sampling.
 * Each test compares the index against ground truth recomputed the
 * legacy way (descriptor + backingOf per index).
 */

#include <gtest/gtest.h>

#include "check/auditors.hh"
#include "guestos/residency.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

struct ResidencyFixture : ::testing::Test
{
    std::unique_ptr<GuestKernel> kernel =
        test::standaloneGuest(16 * mem::mib, 64 * mem::mib);
    AddressSpace *as = nullptr;
    std::uint64_t va = 0;
    RegionHandle region = invalidRegionHandle;
    std::vector<Gpfn> pfns;

    /** mmap + touch `n` pages and register them as one region. */
    void
    populate(std::uint64_t n, MemHint hint)
    {
        va = as->mmap(n * mem::pageSize, VmaKind::Anon, hint);
        region = kernel->residency().registerRegion(as->pid(), va);
        for (std::uint64_t i = 0; i < n; ++i) {
            const Gpfn pfn = as->touch(va + i * mem::pageSize, true);
            pfns.push_back(pfn);
            kernel->residency().appendPage(region, pfn);
        }
    }

    /** Legacy ground truth: FastMem-backed count over all indices. */
    std::uint64_t
    recountFast()
    {
        std::uint64_t fast = 0;
        auto &res = kernel->residency();
        for (std::uint64_t i = 0; i < res.pageCount(region); ++i) {
            if (kernel->backingOf(res.binding(region, i)) ==
                mem::MemType::FastMem)
                ++fast;
        }
        return fast;
    }

    void
    SetUp() override
    {
        as = &kernel->createProcess("p");
    }
};

TEST_F(ResidencyFixture, BindingsAndBitsMatchGroundTruth)
{
    populate(64, MemHint::SlowMem);
    auto &res = kernel->residency();
    ASSERT_EQ(res.pageCount(region), 64u);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(res.binding(region, i), pfns[i]);
        EXPECT_EQ(res.fastBit(region, i),
                  kernel->backingOf(pfns[i]) == mem::MemType::FastMem);
    }
    EXPECT_EQ(res.fastTotal(region), recountFast());
}

TEST_F(ResidencyFixture, MigrationRepointsBindingsAndCounts)
{
    populate(32, MemHint::SlowMem);
    auto &res = kernel->residency();
    const std::uint64_t fast_before = res.fastTotal(region);

    // Promote half the region; the frontend's onRemap hook must
    // re-point every moved binding and flip its bit.
    std::vector<Gpfn> half(pfns.begin(), pfns.begin() + 16);
    const auto out =
        kernel->migrator().migratePages(half, mem::MemType::FastMem);
    ASSERT_EQ(out.migrated, 16u);

    for (std::uint64_t i = 0; i < 32; ++i) {
        const auto cur = as->translate(va + i * mem::pageSize);
        ASSERT_TRUE(cur.has_value());
        EXPECT_EQ(res.binding(region, i), *cur)
            << "binding not re-pointed at index " << i;
    }
    EXPECT_EQ(res.fastTotal(region), fast_before + 16);
    EXPECT_EQ(res.fastTotal(region), recountFast());
}

TEST_F(ResidencyFixture, FastInRangeMatchesBitSum)
{
    populate(48, MemHint::SlowMem);
    // Mixed placement so windows actually vary.
    std::vector<Gpfn> some = {pfns[3], pfns[11], pfns[12], pfns[40],
                              pfns[47]};
    ASSERT_EQ(kernel->migrator()
                  .migratePages(some, mem::MemType::FastMem)
                  .migrated,
              5u);

    auto &res = kernel->residency();
    const std::uint64_t size = res.pageCount(region);
    for (std::uint64_t start : {0ul, 5ul, 40ul, 47ul}) {
        for (std::uint64_t count : {1ul, 7ul, 16ul, 48ul}) {
            std::uint64_t want = 0;
            for (std::uint64_t k = 0; k < count; ++k) {
                std::uint64_t idx = start + k;
                if (idx >= size)
                    idx -= size; // circular window, as the sampler's
                want += res.fastBit(region, idx) ? 1 : 0;
            }
            EXPECT_EQ(res.fastInRange(region, start, count), want)
                << "start=" << start << " count=" << count;
        }
    }
}

TEST_F(ResidencyFixture, TierChangeNotificationsFlipBits)
{
    populate(8, MemHint::SlowMem);
    auto &res = kernel->residency();
    res.enableTierNotifications();
    ASSERT_EQ(res.fastTotal(region), 0u);

    // Simulate the P2M retarget a VMM-exclusive policy performs: the
    // same gpfn's effective tier changes behind the guest's back.
    res.onTierChange(pfns[2], mem::MemType::FastMem);
    res.onTierChange(pfns[5], mem::MemType::FastMem);
    EXPECT_TRUE(res.fastBit(region, 2));
    EXPECT_TRUE(res.fastBit(region, 5));
    EXPECT_EQ(res.fastTotal(region), 2u);

    res.onTierChange(pfns[2], mem::MemType::SlowMem);
    EXPECT_FALSE(res.fastBit(region, 2));
    EXPECT_EQ(res.fastTotal(region), 1u);

    // Idempotent: re-announcing the current tier changes nothing.
    res.onTierChange(pfns[5], mem::MemType::FastMem);
    EXPECT_EQ(res.fastTotal(region), 1u);
}

TEST_F(ResidencyFixture, UnregisterStopsUpdatesAndRecyclesHandle)
{
    populate(16, MemHint::SlowMem);
    auto &res = kernel->residency();
    res.unregisterRegion(region);
    EXPECT_FALSE(res.regionLive(region));

    // Transitions touching the old region's pages must be no-ops now.
    ASSERT_EQ(kernel->migrator()
                  .migratePages({pfns[0]}, mem::MemType::FastMem)
                  .migrated,
              1u);

    // A new region can reuse the handle without inheriting state.
    const std::uint64_t va2 =
        as->mmap(4 * mem::pageSize, VmaKind::Anon, MemHint::SlowMem);
    const RegionHandle h2 = res.registerRegion(as->pid(), va2);
    EXPECT_EQ(h2, region) << "freed handle should be recycled";
    EXPECT_EQ(res.pageCount(h2), 0u);
    EXPECT_EQ(res.fastTotal(h2), 0u);
}

TEST_F(ResidencyFixture, AuditResidencyAgreesOnLiveRegions)
{
    populate(40, MemHint::SlowMem);
    std::vector<Gpfn> some(pfns.begin(), pfns.begin() + 10);
    ASSERT_EQ(kernel->migrator()
                  .migratePages(some, mem::MemType::FastMem)
                  .migrated,
              10u);

    const auto r = check::auditResidency(*kernel);
    EXPECT_TRUE(r.ok()) << (r.failures.empty()
                                ? ""
                                : r.failures.front().describe());
    EXPECT_GT(r.checks, 0u);
}

} // namespace
