/**
 * @file
 * AddressSpace: mmap/munmap, demand faulting, page-type routing,
 * VMA lookup, and release.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

struct AsFixture : ::testing::Test
{
    std::unique_ptr<GuestKernel> kernel = test::standaloneGuest();
    AddressSpace *as = nullptr;

    void
    SetUp() override
    {
        as = &kernel->createProcess("proc");
    }
};

TEST_F(AsFixture, MmapAssignsDisjointRanges)
{
    const auto a = as->mmap(mem::mib, VmaKind::Anon);
    const auto b = as->mmap(mem::mib, VmaKind::Anon);
    EXPECT_GE(b, a + mem::mib);
    EXPECT_EQ(as->vmaCount(), 2u);
    EXPECT_NE(as->findVma(a), nullptr);
    EXPECT_NE(as->findVma(b + mem::mib - 1), nullptr);
    EXPECT_EQ(as->findVma(a + mem::mib), nullptr) << "guard gap";
}

TEST_F(AsFixture, TouchFaultsInOnce)
{
    const auto va = as->mmap(mem::mib, VmaKind::Anon);
    const Gpfn first = as->touch(va, true);
    ASSERT_NE(first, invalidGpfn);
    EXPECT_EQ(as->touch(va, false), first) << "no refault";
    EXPECT_EQ(as->mappedPages(), 1u);

    const PageRef p = kernel->pageMeta(first);
    EXPECT_EQ(p.type(), PageType::Anon);
    EXPECT_EQ(p.owner_process(), as->pid());
    EXPECT_EQ(p.vaddr(), va);
    EXPECT_EQ(p.lru(), LruState::Inactive);
}

TEST_F(AsFixture, TouchSetsPteBits)
{
    const auto va = as->mmap(mem::mib, VmaKind::Anon);
    as->touch(va, true);
    auto pte = as->pageTable().lookup(va);
    ASSERT_TRUE(pte.has_value());
    EXPECT_TRUE(pte->accessed);
    EXPECT_TRUE(pte->dirty);
}

TEST_F(AsFixture, TranslateWithoutFault)
{
    const auto va = as->mmap(mem::mib, VmaKind::Anon);
    EXPECT_FALSE(as->translate(va).has_value());
    const Gpfn pfn = as->touch(va, false);
    EXPECT_EQ(as->translate(va), pfn);
}

TEST_F(AsFixture, MunmapFreesPages)
{
    const auto va = as->mmap(16 * mem::pageSize, VmaKind::Anon);
    std::vector<Gpfn> pfns;
    for (int i = 0; i < 16; ++i)
        pfns.push_back(as->touch(va + i * mem::pageSize, true));
    as->munmap(va);
    EXPECT_EQ(as->mappedPages(), 0u);
    EXPECT_EQ(as->vmaCount(), 0u);
    for (Gpfn pfn : pfns)
        EXPECT_FALSE(kernel->pageMeta(pfn).allocated());
}

TEST_F(AsFixture, FileBackedFaultsThroughPageCache)
{
    const FileId f = kernel->pageCache().createFile(mem::mib);
    const auto va = as->mmap(mem::mib, VmaKind::File, MemHint::None, f, 0);
    const Gpfn pfn = as->touch(va, false);
    ASSERT_NE(pfn, invalidGpfn);
    EXPECT_TRUE(kernel->pageCache().owns(pfn));
    EXPECT_EQ(kernel->pageMeta(pfn).type(), PageType::PageCache);

    // A second process view of the same offset shares the page.
    auto &as2 = kernel->createProcess("proc2");
    const auto va2 =
        as2.mmap(mem::mib, VmaKind::File, MemHint::None, f, 0);
    EXPECT_EQ(as2.touch(va2, false), pfn);
}

TEST_F(AsFixture, MunmapOfFileVmaKeepsCache)
{
    const FileId f = kernel->pageCache().createFile(mem::mib);
    const auto va = as->mmap(mem::mib, VmaKind::File, MemHint::None, f, 0);
    const Gpfn pfn = as->touch(va, false);
    as->munmap(va);
    // The mapping is gone but the data stays cached (possibly in a
    // demoted frame — HeteroOS-LRU rule 1 moves it to SlowMem).
    auto r = kernel->pageCache().read(f, 0, 4 * mem::kib);
    EXPECT_EQ(r.pages_missed, 0u) << "cache outlives the mapping";
    (void)pfn;
}

TEST_F(AsFixture, ReleaseAllUnwindsEverything)
{
    for (int i = 0; i < 4; ++i) {
        const auto va = as->mmap(8 * mem::pageSize, VmaKind::Anon);
        for (int j = 0; j < 8; ++j)
            as->touch(va + j * mem::pageSize, true);
    }
    as->releaseAll();
    EXPECT_EQ(as->vmaCount(), 0u);
    EXPECT_EQ(as->mappedPages(), 0u);
}

TEST_F(AsFixture, MemHintRoutesPlacement)
{
    const auto fast_va =
        as->mmap(mem::pageSize, VmaKind::Anon, MemHint::FastMem);
    const auto slow_va =
        as->mmap(mem::pageSize, VmaKind::Anon, MemHint::SlowMem);
    const Gpfn fp = as->touch(fast_va, true);
    const Gpfn sp = as->touch(slow_va, true);
    EXPECT_EQ(kernel->pageMeta(fp).mem_type(), mem::MemType::FastMem);
    EXPECT_EQ(kernel->pageMeta(sp).mem_type(), mem::MemType::SlowMem);
}

} // namespace
