/**
 * @file
 * hos::check — seeded-corruption coverage.
 *
 * Each test plants one deliberate corruption (double free, mid-
 * residence retype, zone counter desync, broken LRU link, P2M drift,
 * stale gauges) and asserts the *intended* validator catches it with
 * the right CheckFailure kind. Clean-state audits run first as
 * positive controls so a trigger can't hide behind a validator that
 * fires on everything.
 */

#include <gtest/gtest.h>

#include "check/audit_daemon.hh"
#include "check/auditors.hh"
#include "check/check.hh"
#include "check/page_state.hh"
#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "prof/prof.hh"
#include "vmm/vmm.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;
using check::AuditResult;
using check::CheckError;
using check::CheckKind;
using guestos::Gpfn;
using guestos::PageType;

std::size_t
countKind(const AuditResult &r, CheckKind k)
{
    std::size_t n = 0;
    for (const auto &f : r.failures)
        if (f.kind == k)
            ++n;
    return n;
}

/** Expect `fn` to trip a validator of exactly kind `want`. */
template <typename Fn>
void
expectCheckFailure(CheckKind want, Fn &&fn)
{
    check::ScopedThrowMode throw_mode;
    try {
        fn();
        FAIL() << "no validator fired (expected "
               << check::checkKindName(want) << ")";
    } catch (const CheckError &e) {
        EXPECT_EQ(e.kind(), want) << e.what();
    }
}

// --- Page-state machine (direct validator calls; always compiled) ----

TEST(PageStateMachine, TypeTransitionsOnlyThroughFree)
{
    using check::legalTypeTransition;
    static_assert(legalTypeTransition(PageType::Free, PageType::Anon));
    static_assert(legalTypeTransition(PageType::Slab, PageType::Free));
    static_assert(legalTypeTransition(PageType::Anon, PageType::Anon));
    static_assert(!legalTypeTransition(PageType::Anon, PageType::Slab));
    static_assert(
        !legalTypeTransition(PageType::PageCache, PageType::NetBuf));

    using check::lruManagedType;
    static_assert(lruManagedType(PageType::Anon));
    static_assert(lruManagedType(PageType::PageCache));
    static_assert(!lruManagedType(PageType::Slab));
    static_assert(!lruManagedType(PageType::PageTable));
    SUCCEED();
}

TEST(PageStateMachine, DoubleFreeIsPageState)
{
    guestos::PageArray pa(8);
    const guestos::PageRef p = pa.page(7); // allocated bit clear
    expectCheckFailure(CheckKind::PageState,
                       [&] { check::validateFree(p, "test"); });
}

TEST(PageStateMachine, DoubleAllocationIsPageState)
{
    guestos::PageArray pa(8);
    guestos::PageRef p = pa.page(7);
    pa.setAllocated(p, true);
    p.setType(PageType::Anon); // still live
    expectCheckFailure(CheckKind::PageState, [&] {
        check::validateAlloc(p, PageType::Slab, "test");
    });
}

TEST(PageStateMachine, LiveRetypeIsPageState)
{
    guestos::PageArray pa(8);
    guestos::PageRef p = pa.page(7);
    pa.setAllocated(p, true);
    p.setType(PageType::Anon);
    expectCheckFailure(CheckKind::PageState, [&] {
        check::validateTypeChange(p, PageType::Slab, "test");
    });
}

TEST(PageStateMachine, MigratingExceptionTypeIsPlacement)
{
    guestos::PageArray pa(8);
    guestos::PageRef p = pa.page(7);
    pa.setAllocated(p, true);
    p.setType(PageType::PageTable); // §4.1 migration exception
    expectCheckFailure(CheckKind::Placement, [&] {
        check::validateMigration(p, mem::MemType::SlowMem, "test");
    });
}

TEST(PageStateMachine, PinnedIoPageInFastMemIsPlacement)
{
    guestos::PageArray pa(8);
    guestos::PageRef p = pa.page(7);
    pa.setAllocated(p, true);
    p.setType(PageType::PageCache);
    p.setUnevictable(true);
    p.setMemType(mem::MemType::FastMem);
    expectCheckFailure(CheckKind::Placement,
                       [&] { check::validatePlacement(p, "test"); });
}

TEST(PageStateMachine, NonManagedTypeOnLruIsLru)
{
    guestos::PageArray pa(8);
    guestos::PageRef p = pa.page(7);
    pa.setAllocated(p, true);
    p.setType(PageType::Slab);
    expectCheckFailure(CheckKind::Lru,
                       [&] { check::validateLruInsert(p, "test"); });
}

// --- End-to-end through the kernel's guarded call sites --------------

TEST(KernelTransitions, DoubleFreeCaughtInFreePath)
{
    if (!check::cheapChecksEnabled)
        GTEST_SKIP() << "call-site validators compiled out "
                        "(HOS_CHECK=off)";
    auto kernel = test::standaloneGuest();
    const Gpfn pfn = kernel->allocPageOnNode(0, PageType::Anon);
    ASSERT_NE(pfn, guestos::invalidGpfn);
    kernel->freePage(pfn);
    expectCheckFailure(CheckKind::PageState,
                       [&] { kernel->freePage(pfn); });
}

TEST(KernelTransitions, LruInsertOfSlabPageCaught)
{
    if (!check::cheapChecksEnabled)
        GTEST_SKIP() << "call-site validators compiled out "
                        "(HOS_CHECK=off)";
    auto kernel = test::standaloneGuest();
    const Gpfn pfn = kernel->allocPageOnNode(0, PageType::Slab);
    ASSERT_NE(pfn, guestos::invalidGpfn);
    expectCheckFailure(CheckKind::Lru, [&] { kernel->lruAdd(pfn); });
}

TEST(KernelTransitions, MigrationFrontendSkipsPinnedPages)
{
    // The frontend's own state checks sit in front of the validator
    // (Section 4.1: the guest skips what it must not move), so a
    // pinned page is skipped, never failed.
    auto kernel = test::standaloneGuest();
    const Gpfn pfn = kernel->allocPageOnNode(
        kernel->nodeFor(mem::MemType::SlowMem)->id(), PageType::Anon);
    ASSERT_NE(pfn, guestos::invalidGpfn);
    kernel->pageMeta(pfn).setUnevictable(true);
    const auto out =
        kernel->migrator().migratePages({pfn}, mem::MemType::FastMem);
    EXPECT_EQ(out.migrated, 0u);
    EXPECT_EQ(out.skipped_pinned, 1u);
}

// --- Cross-layer auditors --------------------------------------------

struct AuditFixture : ::testing::Test
{
    std::unique_ptr<guestos::GuestKernel> kernel =
        test::standaloneGuest();
};

TEST_F(AuditFixture, CleanKernelAuditsClean)
{
    // Positive control, including live allocations and LRU residents.
    std::vector<Gpfn> held;
    for (int i = 0; i < 16; ++i) {
        const Gpfn pfn = kernel->allocPageOnNode(0, PageType::Anon);
        ASSERT_NE(pfn, guestos::invalidGpfn);
        kernel->lruAdd(pfn);
        held.push_back(pfn);
    }
    const AuditResult r = check::auditKernel(*kernel);
    EXPECT_TRUE(r.ok()) << (r.failures.empty()
                                ? ""
                                : r.failures.front().describe());
    EXPECT_GT(r.checks, 0u);
}

TEST_F(AuditFixture, RetypeMidLruResidenceIsPageState)
{
    const Gpfn pfn = kernel->allocPageOnNode(0, PageType::Anon);
    ASSERT_NE(pfn, guestos::invalidGpfn);
    kernel->lruAdd(pfn);

    // The corruption: a live LRU-resident page silently becomes Slab.
    kernel->pageMeta(pfn).setType(PageType::Slab);

    const AuditResult r = check::auditKernel(*kernel);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::PageState), 1u);
    bool flagged = false;
    for (const auto &f : r.failures)
        if (f.kind == CheckKind::PageState && f.subject == pfn)
            flagged = true;
    EXPECT_TRUE(flagged) << "retyped page not the failure subject";
}

TEST_F(AuditFixture, BrokenLruLinkIsListIntegrity)
{
    std::vector<Gpfn> held;
    for (int i = 0; i < 3; ++i) {
        const Gpfn pfn = kernel->allocPageOnNode(0, PageType::Anon);
        ASSERT_NE(pfn, guestos::invalidGpfn);
        kernel->lruAdd(pfn);
        held.push_back(pfn);
    }
    // The corruption: the middle element forgets its list ownership,
    // as if a racing remove() half-completed.
    kernel->pageMeta(held[1]).setListId(guestos::noListId);

    const AuditResult r = check::auditKernel(*kernel);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::ListIntegrity), 1u);
}

TEST_F(AuditFixture, AllocatedPageInFreeBlockIsZoneAccounting)
{
    guestos::Zone &zone = kernel->node(0).zone(0);
    Gpfn victim = guestos::invalidGpfn;
    for (unsigned o = 0; o < guestos::BuddyAllocator::maxOrder; ++o) {
        if (!zone.buddy().freeList(o).empty()) {
            victim = zone.buddy().freeList(o).head();
            break;
        }
    }
    ASSERT_NE(victim, guestos::invalidGpfn);

    // The corruption: a page sitting on a buddy free list claims to
    // be allocated (lost free / use-after-free shape).
    kernel->pages().setAllocated(victim, true);

    const AuditResult r = check::auditKernel(*kernel);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::ZoneAccounting), 1u);
    for (const auto &f : r.failures)
        EXPECT_EQ(f.kind, CheckKind::ZoneAccounting) << f.describe();
}

TEST_F(AuditFixture, ConservationIdentityBreakIsZoneAccounting)
{
    const Gpfn pfn = kernel->allocPageOnNode(0, PageType::Anon);
    ASSERT_NE(pfn, guestos::invalidGpfn);

    // The corruption: the allocated bit vanishes while the buddy and
    // per-CPU counters still believe the page is out — the node-level
    // managed = free + cached + allocated identity no longer holds.
    kernel->pages().setAllocated(pfn, false);

    const AuditResult r = check::auditKernel(*kernel);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::ZoneAccounting), 1u);
}

TEST_F(AuditFixture, ResidencyBitDriftIsResidency)
{
    // Ground truth setup: one registered region over live pages.
    auto &as = kernel->createProcess("p");
    const auto va = as.mmap(8 * mem::pageSize, guestos::VmaKind::Anon,
                            guestos::MemHint::SlowMem);
    auto &res = kernel->residency();
    const auto h = res.registerRegion(as.pid(), va);
    std::vector<Gpfn> pfns;
    for (int i = 0; i < 8; ++i) {
        pfns.push_back(as.touch(va + i * mem::pageSize, true));
        res.appendPage(h, pfns.back());
    }
    res.enableTierNotifications();

    // Positive control: the index agrees with the legacy re-derivation.
    ASSERT_TRUE(check::auditResidency(*kernel).ok());

    // The corruption: a tier notification that never happened — the
    // stored fast bit now disagrees with the page's actual backing.
    res.onTierChange(pfns[3], mem::MemType::FastMem);

    const AuditResult r = check::auditKernel(*kernel);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::Residency), 1u);
    bool flagged = false;
    for (const auto &f : r.failures)
        if (f.kind == CheckKind::Residency && f.subject == pfns[3])
            flagged = true;
    EXPECT_TRUE(flagged) << "drifted binding not the failure subject";
}

TEST_F(AuditFixture, StaleGaugesAreStatDrift)
{
    sim::StatRegistry registry;
    // Register WITHOUT a refresh hook — the dead-wiring bug this
    // auditor exists to catch.
    registry.add(&kernel->stats());
    kernel->syncStats(); // gauges correct at this instant

    // Clean control while gauges still match.
    EXPECT_TRUE(check::auditStats(*kernel, registry).ok());

    // Live state moves on; nothing refreshes the gauges.
    ASSERT_NE(kernel->allocPageOnNode(0, PageType::Anon),
              guestos::invalidGpfn);

    const AuditResult r = check::auditStats(*kernel, registry);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(countKind(r, CheckKind::StatDrift), r.failures.size());

    // With the hook wired the same drift heals on refresh.
    sim::StatRegistry wired;
    guestos::GuestKernel *k = kernel.get();
    wired.add(&kernel->stats(), [k] { k->syncStats(); });
    EXPECT_TRUE(check::auditStats(*kernel, wired).ok());
}

// --- P2M vs machine ownership ----------------------------------------

struct P2mAuditFixture : ::testing::Test
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> hypervisor;
    std::unique_ptr<guestos::GuestKernel> guest;
    vmm::VmContext *vm = nullptr;

    void
    SetUp() override
    {
        machine.addNode(mem::MemType::FastMem,
                        mem::dramSpec(16 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(64 * mem::mib));
        hypervisor = std::make_unique<vmm::Vmm>(machine);

        guestos::GuestConfig cfg;
        cfg.name = "vm";
        cfg.cpus = 2;
        cfg.nodes = {
            {mem::MemType::FastMem, 16 * mem::mib, 4 * mem::mib},
            {mem::MemType::SlowMem, 64 * mem::mib, 16 * mem::mib}};
        guest = std::make_unique<guestos::GuestKernel>(cfg);
        vm = &hypervisor->vm(hypervisor->registerVm(*guest, {}));
    }
};

TEST_F(P2mAuditFixture, CleanVmAuditsClean)
{
    const AuditResult r = check::auditVmm(*hypervisor);
    EXPECT_TRUE(r.ok()) << (r.failures.empty()
                                ? ""
                                : r.failures.front().describe());
}

TEST_F(P2mAuditFixture, DroppedMappingIsP2m)
{
    const Gpfn gpfn = guest->node(0).base();
    ASSERT_TRUE(vm->p2m().populated(gpfn));

    // The corruption: the P2M entry vanishes while the guest still
    // believes the gpfn populated (and the machine frame stays owned).
    vm->p2m().clear(gpfn);

    const AuditResult r = check::auditP2m(*vm, machine);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::P2m), 1u);
    for (const auto &f : r.failures)
        EXPECT_EQ(f.kind, CheckKind::P2m) << f.describe();
}

TEST_F(P2mAuditFixture, DoubleMappedFrameIsP2m)
{
    const Gpfn g1 = guest->node(0).base();
    const Gpfn g2 = g1 + 1;
    ASSERT_TRUE(vm->p2m().populated(g1));
    ASSERT_TRUE(vm->p2m().populated(g2));

    // The corruption: two gpfns claim the same machine frame.
    vm->p2m().set(g2, vm->p2m().mfnOf(g1), vm->p2m().tierOf(g1));

    const AuditResult r = check::auditP2m(*vm, machine);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::P2m), 1u);
}

// --- Profiler span-stack auditor -------------------------------------

TEST(ProfAudit, BalancedSpansAuditClean)
{
    // Positive control: every opened span closed by end-of-run.
    prof::Profiler profiler;
    profiler.beginSpan(prof::SpanKind::MigrationEpoch, 0, 0,
                       prof::noTier);
    profiler.beginSpan(prof::SpanKind::BatchCopy, 10, 0, prof::noTier);
    profiler.endSpan(20);
    profiler.endSpan(30);
    const AuditResult r = check::auditProf(profiler);
    EXPECT_TRUE(r.ok()) << (r.failures.empty()
                                ? ""
                                : r.failures.front().describe());
    EXPECT_GT(r.checks, 0u);
}

TEST(ProfAudit, LeakedSpanIsProf)
{
    // The corruption: a span opened by hand and never closed — the
    // shape a thrown exception skipping a non-RAII end would leave.
    prof::Profiler profiler;
    profiler.beginSpan(prof::SpanKind::ScanPass, 0, 0, prof::noTier);

    const AuditResult r = check::auditProf(profiler);
    ASSERT_FALSE(r.ok());
    EXPECT_GE(countKind(r, CheckKind::Prof), 1u);
    expectCheckFailure(CheckKind::Prof,
                       [&] { check::enforce(check::auditProf(profiler)); });
}

// --- enforce() and the audit daemon ----------------------------------

TEST(Enforce, CleanResultIsNoop)
{
    check::AuditResult r;
    r.checks = 10;
    check::enforce(r); // must not throw or abort
    SUCCEED();
}

TEST(Enforce, ReportsAllAndThrowsFirst)
{
    check::AuditResult r;
    r.addFailure(CheckKind::Lru, 1, "test", "first");
    r.addFailure(CheckKind::P2m, 2, "test", "second");

    const std::uint64_t before = check::failuresReported();
    check::ScopedThrowMode throw_mode;
    try {
        check::enforce(r);
        FAIL() << "enforce() on a dirty result did not fail";
    } catch (const CheckError &e) {
        EXPECT_EQ(e.kind(), CheckKind::Lru);
        EXPECT_EQ(e.failure().subject, 1u);
    }
    // Both failures went through report(), not just the thrown one.
    EXPECT_EQ(check::failuresReported(), before + 2);
}

TEST_F(P2mAuditFixture, DaemonAuditsPeriodically)
{
    check::AuditDaemon daemon(*hypervisor, guest->events(),
                              sim::milliseconds(1));
    daemon.start();
    guest->events().runUntil(sim::milliseconds(5));
    EXPECT_GE(daemon.auditsRun(), 4u);
    EXPECT_GT(daemon.checksRun(), 0u);
    EXPECT_EQ(daemon.failuresFound(), 0u);
}

TEST_F(P2mAuditFixture, DaemonSurfacesSeededCorruption)
{
    check::AuditDaemon daemon(*hypervisor, guest->events(),
                              sim::milliseconds(1));
    daemon.setEnforce(false); // collect, don't terminate
    daemon.start();

    vm->p2m().clear(guest->node(0).base());
    guest->events().runUntil(sim::milliseconds(2));
    EXPECT_GT(daemon.failuresFound(), 0u);
}

} // namespace
