/**
 * @file
 * Scenario & Sweep API: JSON round-trips, cartesian expansion order,
 * the parallel runner's bit-identity guarantee, and per-system trace
 * sink isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/experiment.hh"
#include "core/sweep.hh"
#include "sim/rng.hh"
#include "test_helpers.hh"
#include "trace/trace.hh"

namespace {

using namespace hos;

core::Scenario
tinyBase()
{
    return core::Scenario{}
        .withCapacity(128 * mem::mib, 512 * mem::mib)
        .withScale(0.02);
}

TEST(Scenario, JsonRoundTripPreservesEveryField)
{
    auto s = core::Scenario{}
                 .withApp(workload::AppId::Redis)
                 .withApproach(core::Approach::Coordinated)
                 .withThrottle(3.0, 7.0)
                 .withCapacity(1 * mem::gib, 1024 * mem::gib)
                 .withLlcBytes(48 * mem::mib)
                 .withScale(0.37)
                 .withSeed(12345)
                 .withCpus(8)
                 .withName("round-trip");

    std::string error;
    const auto doc = sim::jsonParse(core::scenarioToJson(s), &error);
    ASSERT_TRUE(doc) << error;
    const auto back = core::scenarioFromJson(*doc, &error);
    ASSERT_TRUE(back) << error;

    EXPECT_EQ(back->app, s.app);
    EXPECT_EQ(back->approach, s.approach);
    EXPECT_DOUBLE_EQ(back->slow_lat_factor, s.slow_lat_factor);
    EXPECT_DOUBLE_EQ(back->slow_bw_factor, s.slow_bw_factor);
    // 1 TiB has 13 decimal digits — catches float-formatted sizes.
    EXPECT_EQ(back->fast_bytes, s.fast_bytes);
    EXPECT_EQ(back->slow_bytes, s.slow_bytes);
    EXPECT_EQ(back->llc_bytes, s.llc_bytes);
    EXPECT_DOUBLE_EQ(back->scale, s.scale);
    EXPECT_EQ(back->seed, s.seed);
    EXPECT_EQ(back->cpus, s.cpus);
    EXPECT_EQ(back->name, s.name);
    EXPECT_FALSE(back->slow_override);

    // And a second serialization is byte-identical.
    EXPECT_EQ(core::scenarioToJson(*back), core::scenarioToJson(s));
}

TEST(Scenario, SlowOverrideRoundTrips)
{
    auto nvm = mem::throttledSpec(5.0, 8.0, 0);
    nvm.name = "NVM";
    const auto s = tinyBase().withSlowSpec(nvm);

    std::string error;
    const auto doc = sim::jsonParse(core::scenarioToJson(s), &error);
    ASSERT_TRUE(doc) << error;
    const auto back = core::scenarioFromJson(*doc, &error);
    ASSERT_TRUE(back) << error;
    ASSERT_TRUE(back->slow_override);
    EXPECT_EQ(back->slow_override->name, "NVM");
    EXPECT_DOUBLE_EQ(back->slow_override->load_latency_ns,
                     nvm.load_latency_ns);
    EXPECT_DOUBLE_EQ(back->slow_override->bandwidth_gbps,
                     nvm.bandwidth_gbps);

    // The override drives the host's slow tier; capacity still comes
    // from slow_bytes.
    const auto host = back->host();
    EXPECT_EQ(host.slow.name, "NVM");
    EXPECT_EQ(host.slow.capacity_bytes, back->slow_bytes);
}

TEST(Scenario, LoadScenarioAcceptsCommentsAndTrailingCommas)
{
    const std::string path = "scenario_tmp_test.json";
    {
        std::ofstream os(path);
        os << "// tiny testbed\n"
              "{\n"
              "  \"app\": \"leveldb\",\n"
              "  \"approach\": \"coord\",\n"
              "  \"scale\": 0.05,\n"
              "}\n";
    }
    std::string error;
    const auto s = core::loadScenario(path, &error);
    std::remove(path.c_str());
    ASSERT_TRUE(s) << error;
    EXPECT_EQ(s->app, workload::AppId::LevelDb);
    EXPECT_EQ(s->approach, core::Approach::Coordinated);
    EXPECT_DOUBLE_EQ(s->scale, 0.05);
}

TEST(Scenario, BadParamsAreRejectedWithContext)
{
    core::Scenario s;
    std::string error;
    EXPECT_FALSE(core::applyScenarioParam(s, "no_such_key", "1", &error));
    EXPECT_NE(error.find("no_such_key"), std::string::npos);
    EXPECT_FALSE(core::applyScenarioParam(s, "approach", "bogus", &error));
    EXPECT_FALSE(core::applyScenarioParam(s, "scale", "fast", &error));
    // The failed applications left the scenario untouched.
    EXPECT_DOUBLE_EQ(s.scale, 1.0);
    EXPECT_EQ(s.approach, core::Approach::HeteroLru);
}

TEST(Sweep, ExpansionIsRowMajor)
{
    core::Sweep sweep(tinyBase());
    sweep.approaches({core::Approach::SlowMemOnly,
                      core::Approach::HeteroLru})
        .axis("slow_lat_factor", std::vector<double>{2.0, 5.0, 8.0});

    EXPECT_EQ(sweep.numPoints(), 6u);
    std::string error;
    const auto points = sweep.points(&error);
    ASSERT_EQ(points.size(), 6u) << error;

    // First axis varies slowest: slow×{2,5,8}, then lru×{2,5,8}.
    EXPECT_EQ(points[0].scenario.approach, core::Approach::SlowMemOnly);
    EXPECT_DOUBLE_EQ(points[0].scenario.slow_lat_factor, 2.0);
    EXPECT_DOUBLE_EQ(points[2].scenario.slow_lat_factor, 8.0);
    EXPECT_EQ(points[3].scenario.approach, core::Approach::HeteroLru);
    EXPECT_DOUBLE_EQ(points[3].scenario.slow_lat_factor, 2.0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].index, i);
        ASSERT_EQ(points[i].params.size(), 2u);
        EXPECT_EQ(points[i].params[0].first, "approach");
        EXPECT_EQ(points[i].params[1].first, "slow_lat_factor");
    }
}

TEST(Sweep, ReplicasAddDerivedSeedAxis)
{
    core::Sweep sweep(tinyBase().withSeed(7));
    sweep.replicas(3);
    ASSERT_EQ(sweep.axes().size(), 1u);
    EXPECT_EQ(sweep.axes()[0].key, "seed");
    ASSERT_EQ(sweep.axes()[0].values.size(), 3u);

    std::string error;
    const auto points = sweep.points(&error);
    ASSERT_EQ(points.size(), 3u) << error;
    for (unsigned r = 0; r < 3; ++r)
        EXPECT_EQ(points[r].scenario.seed, sim::deriveSeed(7, r));
    EXPECT_NE(points[0].scenario.seed, points[1].scenario.seed);
}

TEST(Sweep, UnknownAxisKeyFailsExpansion)
{
    core::Sweep sweep(tinyBase());
    sweep.axis("not_a_field", std::vector<std::string>{"1", "2"});
    std::string error;
    EXPECT_TRUE(sweep.points(&error).empty());
    EXPECT_NE(error.find("not_a_field"), std::string::npos);
}

TEST(Sweep, JsonRoundTrip)
{
    core::Sweep sweep(tinyBase().withApp(workload::AppId::Metis));
    sweep.approaches({core::Approach::HeteroLru,
                      core::Approach::Coordinated})
        .axis("scale", std::vector<double>{0.02, 0.04});

    std::ostringstream os;
    {
        sim::JsonWriter w(os);
        core::sweepToJson(w, sweep);
    }
    std::string error;
    const auto doc = sim::jsonParse(os.str(), &error);
    ASSERT_TRUE(doc) << error;
    const auto back = core::sweepFromJson(*doc, &error);
    ASSERT_TRUE(back) << error;

    EXPECT_EQ(back->base().app, workload::AppId::Metis);
    ASSERT_EQ(back->axes().size(), 2u);
    EXPECT_EQ(back->axes()[0].key, "approach");
    EXPECT_EQ(back->axes()[1].key, "scale");
    EXPECT_EQ(back->numPoints(), 4u);

    std::ostringstream os2;
    {
        sim::JsonWriter w(os2);
        core::sweepToJson(w, *back);
    }
    EXPECT_EQ(os2.str(), os.str());
}

/**
 * The tentpole invariant: a 12-point sweep on 8 threads produces the
 * same bytes as the serial run — every RunRecord, in the same order.
 */
TEST(SweepRunner, ParallelRunIsBitIdenticalToSerial)
{
    core::Sweep sweep(tinyBase());
    sweep.apps({workload::AppId::GraphChi, workload::AppId::Redis})
        .approaches({core::Approach::SlowMemOnly,
                     core::Approach::HeteroLru,
                     core::Approach::Coordinated})
        .axis("slow_lat_factor", std::vector<double>{2.0, 5.0});
    ASSERT_EQ(sweep.numPoints(), 12u);

    core::SweepRunner runner(sweep);
    const auto serial = runner.run(1);
    const auto parallel = runner.run(8);
    ASSERT_EQ(serial.size(), 12u);
    ASSERT_EQ(parallel.size(), 12u);

    std::ostringstream serial_os, parallel_os;
    core::writeSweepResultsJson(serial_os, sweep, serial);
    core::writeSweepResultsJson(parallel_os, sweep, parallel);
    EXPECT_GT(serial_os.str().size(), 100u);
    EXPECT_EQ(serial_os.str(), parallel_os.str())
        << "parallel execution must not change a single byte";
    EXPECT_TRUE(hos::test::jsonWellFormed(serial_os.str()));
}

TEST(SweepRunner, ProgressCallbackSeesEveryPoint)
{
    core::Sweep sweep(tinyBase());
    sweep.approaches({core::Approach::SlowMemOnly,
                      core::Approach::HeteroLru});
    core::SweepRunner runner(sweep);
    std::vector<std::size_t> seen;
    runner.onPointDone([&](const core::SweepResult &r) {
        seen.push_back(r.point.index);
    });
    const auto results = runner.run(2);
    ASSERT_EQ(results.size(), 2u);
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1}));
}

/**
 * Satellite (c): two systems in one process must not interleave trace
 * events. Tracing is per-system opt-in; the global tracer stays cold.
 */
TEST(TraceIsolation, PerSystemSinksDoNotInterleave)
{
    const auto global_before = trace::tracer().recorded();

    auto traced_spec = tinyBase().withApproach(core::Approach::HeteroLru);
    auto quiet_spec = traced_spec;

    auto traced = core::systemFor(traced_spec);
    auto quiet = core::systemFor(quiet_spec);
    traced->enableTracing();
    EXPECT_TRUE(traced->tracingEnabled());
    EXPECT_FALSE(quiet->tracingEnabled());

    traced->runOne(traced->slot(0),
                   workload::makeApp(workload::AppId::GraphChi, 0.02));
    quiet->runOne(quiet->slot(0),
                  workload::makeApp(workload::AppId::GraphChi, 0.02));

    EXPECT_GT(traced->traceSink().recorded(), 0u)
        << "the opted-in system captured its own events";
    EXPECT_EQ(quiet->traceSink().recorded(), 0u)
        << "the quiet system stayed quiet";
    EXPECT_EQ(trace::tracer().recorded(), global_before)
        << "per-system tracing never leaks into the process tracer";
}

TEST(TraceIsolation, ScopedSinkNestsAndRestores)
{
    const auto all = static_cast<std::uint32_t>(trace::Category::All);
    trace::Tracer outer, inner;
    outer.enable(all);
    inner.enable(all);
    {
        trace::ScopedSink a(&outer);
        trace::emit(trace::EventType::PageAlloc, 1);
        {
            trace::ScopedSink b(&inner);
            trace::emit(trace::EventType::PageAlloc, 2);
        }
        trace::emit(trace::EventType::PageAlloc, 3);
    }
    EXPECT_EQ(outer.recorded(), 2u);
    EXPECT_EQ(inner.recorded(), 1u);
}

} // namespace
