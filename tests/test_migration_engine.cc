/**
 * @file
 * MigrationEngine: P2M retargeting, exchange when tiers are full,
 * cold-victim selection, and promoteWithEviction end-to-end.
 */

#include <gtest/gtest.h>

#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "vmm/migration_engine.hh"
#include "vmm/vmm.hh"

namespace {

using namespace hos;

struct EngineFixture : ::testing::Test
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> hypervisor;
    std::unique_ptr<guestos::GuestKernel> guest;
    vmm::VmId id = 0;

    void
    SetUp() override
    {
        machine.addNode(mem::MemType::FastMem, mem::dramSpec(4 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(16 * mem::mib));
        hypervisor = std::make_unique<vmm::Vmm>(machine);

        // Hidden VM sized to fill both tiers completely.
        guestos::GuestConfig cfg;
        cfg.name = "hidden";
        cfg.cpus = 1;
        cfg.nodes = {{mem::MemType::SlowMem, 20 * mem::mib,
                      20 * mem::mib}};
        guest = std::make_unique<guestos::GuestKernel>(cfg);
        vmm::VmConfig vcfg;
        vcfg.hide_heterogeneity = true;
        id = hypervisor->registerVm(*guest, vcfg);
    }
};

TEST_F(EngineFixture, MigrateBackingRetargetsP2m)
{
    auto &vm = hypervisor->vm(id);
    vmm::MigrationEngine engine(*hypervisor);

    // gpfn 0 is slow-backed after boot (slow fills first). Both tiers
    // are full, so free a fast frame by demoting one fast-backed page.
    ASSERT_EQ(vm.p2m().tierOf(0), mem::MemType::SlowMem);
    ASSERT_FALSE(vm.fastBacked().empty());

    const guestos::Gpfn fastpage = *vm.fastBacked().begin();
    // No free slow frames either -> plain migration fails...
    auto res = engine.migrateBacking(vm, {0}, mem::MemType::FastMem);
    EXPECT_EQ(res.migrated, 0u);
    EXPECT_EQ(res.no_frames, 1u);

    // ...but the exchange path swaps the two backings.
    EXPECT_TRUE(engine.exchangeBacking(vm, 0, fastpage));
    EXPECT_EQ(vm.p2m().tierOf(0), mem::MemType::FastMem);
    EXPECT_EQ(vm.p2m().tierOf(fastpage), mem::MemType::SlowMem);
    EXPECT_TRUE(vm.fastBacked().count(0));
    EXPECT_FALSE(vm.fastBacked().count(fastpage));
}

TEST_F(EngineFixture, ExchangeRejectsWrongDirections)
{
    auto &vm = hypervisor->vm(id);
    vmm::MigrationEngine engine(*hypervisor);
    const guestos::Gpfn fastpage = *vm.fastBacked().begin();
    EXPECT_FALSE(engine.exchangeBacking(vm, fastpage, fastpage));
    EXPECT_FALSE(engine.exchangeBacking(vm, 0, 1)) << "both slow";
}

TEST_F(EngineFixture, ColdestFastBackedSortsByHeat)
{
    auto &vm = hypervisor->vm(id);
    vmm::MigrationEngine engine(*hypervisor);
    // Give two fast-backed pages distinct heat.
    auto it = vm.fastBacked().begin();
    const guestos::Gpfn hotp = *it++;
    const guestos::Gpfn coldp = *it;
    guest->pageMeta(hotp).setHeat(120);
    guest->pageMeta(coldp).setHeat(0);

    auto victims = engine.coldestFastBacked(vm, 4);
    ASSERT_GE(victims.size(), 2u);
    EXPECT_LE(guest->pageMeta(victims.front()).heat(),
              guest->pageMeta(victims.back()).heat());
}

TEST_F(EngineFixture, PromoteWithEvictionMovesHotIn)
{
    auto &vm = hypervisor->vm(id);
    vmm::MigrationEngine engine(*hypervisor);

    // Mark three slow-backed pages hot; fast-backed victims are cold.
    std::vector<guestos::Gpfn> hot = {0, 1, 2};
    for (auto pfn : hot) {
        ASSERT_EQ(vm.p2m().tierOf(pfn), mem::MemType::SlowMem);
        guest->pageMeta(pfn).setHeat(120);
    }
    const auto before =
        guest->overheadTotal(guestos::OverheadKind::Migration);
    auto res = engine.promoteWithEviction(vm, hot);
    EXPECT_EQ(res.migrated, 6u) << "three exchanges = six page moves";
    for (auto pfn : hot)
        EXPECT_EQ(vm.p2m().tierOf(pfn), mem::MemType::FastMem);
    EXPECT_GT(guest->overheadTotal(guestos::OverheadKind::Migration),
              before);
}

TEST_F(EngineFixture, PromoteSkipsWhenVictimsAreHotter)
{
    auto &vm = hypervisor->vm(id);
    vmm::MigrationEngine engine(*hypervisor);
    for (auto pfn : vm.fastBacked())
        guest->pageMeta(pfn).setHeat(127); // everything resident is hot
    guest->pageMeta(0).setHeat(100);       // candidate is cooler
    auto res = engine.promoteWithEviction(vm, {0});
    EXPECT_EQ(res.migrated, 0u) << "no exchange that loses heat";
    EXPECT_EQ(vm.p2m().tierOf(0), mem::MemType::SlowMem);
}

TEST_F(EngineFixture, AlreadyFastPagesAreNotCandidates)
{
    auto &vm = hypervisor->vm(id);
    vmm::MigrationEngine engine(*hypervisor);
    const guestos::Gpfn fastpage = *vm.fastBacked().begin();
    guest->pageMeta(fastpage).setHeat(127);
    auto res = engine.promoteWithEviction(vm, {fastpage});
    EXPECT_EQ(res.migrated, 0u);
}

} // namespace
