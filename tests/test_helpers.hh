/**
 * @file
 * Shared fixtures for guest-OS and system tests.
 */

#ifndef HOS_TESTS_TEST_HELPERS_HH
#define HOS_TESTS_TEST_HELPERS_HH

#include <memory>
#include <string>

#include "guestos/kernel.hh"

namespace hos::test {

/**
 * String-aware JSON well-formedness check: every brace/bracket opened
 * outside a string closes in order, and the document ends balanced.
 * Not a full parser — enough to catch exporter bookkeeping bugs.
 */
inline bool
jsonWellFormed(const std::string &s)
{
    std::string stack;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !in_string && stack.empty();
}

/**
 * A guest kernel with its nodes fully populated directly (no VMM) —
 * the standalone-OS configuration Section 4.3 mentions ("easily
 * applied to non-virtualized systems").
 */
inline std::unique_ptr<guestos::GuestKernel>
standaloneGuest(std::uint64_t fast_bytes = 64 * mem::mib,
                std::uint64_t slow_bytes = 256 * mem::mib,
                guestos::AllocConfig alloc = guestos::heapIoSlabOdConfig(),
                bool lru_enabled = true)
{
    guestos::GuestConfig cfg;
    cfg.name = "test-guest";
    cfg.cpus = 2;
    cfg.alloc = alloc;
    cfg.alloc.balloon_on_pressure = false; // no VMM attached
    cfg.lru.enabled = lru_enabled;
    cfg.nodes.clear();
    if (fast_bytes > 0) {
        cfg.nodes.push_back(
            {mem::MemType::FastMem, fast_bytes, fast_bytes});
    }
    cfg.nodes.push_back({mem::MemType::SlowMem, slow_bytes, slow_bytes});

    auto kernel = std::make_unique<guestos::GuestKernel>(cfg);
    for (unsigned nid = 0; nid < kernel->numNodes(); ++nid) {
        auto &node = kernel->node(nid);
        auto gpfns =
            kernel->takeUnpopulatedGpfns(nid, node.spanPages());
        for (guestos::Gpfn pfn : gpfns) {
            kernel->pageMeta(pfn).setPopulated(true);
            node.zoneOf(pfn).buddy().addFreeRange(pfn, 1);
        }
        for (std::size_t zi = 0; zi < node.numZones(); ++zi)
            node.zone(zi).updateWatermarks();
    }
    return kernel;
}

} // namespace hos::test

#endif // HOS_TESTS_TEST_HELPERS_HH
