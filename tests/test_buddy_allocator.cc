/**
 * @file
 * BuddyAllocator: split/coalesce correctness, alignment, exhaustion,
 * ballooning removal, and a property sweep that hammers random
 * alloc/free sequences and then checks full-coalescing invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "guestos/buddy_allocator.hh"
#include "sim/rng.hh"

namespace {

using namespace hos::guestos;

struct BuddyFixture : ::testing::Test
{
    static constexpr std::uint64_t span = 1 << 14; // 16K pages
    PageArray pages{span};
    BuddyAllocator buddy{pages, 0, span};

    void
    SetUp() override
    {
        buddy.addFreeRange(0, span);
    }
};

TEST_F(BuddyFixture, StartsFullyFree)
{
    EXPECT_EQ(buddy.freePages(), span);
    EXPECT_EQ(buddy.managedPages(), span);
    buddy.checkInvariants();
}

TEST_F(BuddyFixture, AllocMarksPagesAllocated)
{
    const Gpfn pfn = buddy.alloc(3);
    ASSERT_NE(pfn, invalidGpfn);
    EXPECT_EQ(pfn % 8, 0u) << "order-3 block must be aligned";
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(pages.page(pfn + i).allocated());
    EXPECT_EQ(buddy.freePages(), span - 8);
    buddy.checkInvariants();
}

TEST_F(BuddyFixture, FreeCoalescesBackToMaximalBlocks)
{
    std::vector<Gpfn> held;
    for (int i = 0; i < 64; ++i)
        held.push_back(buddy.alloc(0));
    for (Gpfn pfn : held)
        buddy.free(pfn, 0);
    EXPECT_EQ(buddy.freePages(), span);
    buddy.checkInvariants();
    // Everything should have coalesced into max-order blocks again.
    EXPECT_EQ(buddy.freeBlocks(BuddyAllocator::maxOrder - 1),
              span >> (BuddyAllocator::maxOrder - 1));
}

TEST_F(BuddyFixture, ExhaustionReturnsInvalid)
{
    std::uint64_t got = 0;
    while (buddy.alloc(0) != invalidGpfn)
        ++got;
    EXPECT_EQ(got, span);
    EXPECT_EQ(buddy.alloc(0), invalidGpfn);
    EXPECT_EQ(buddy.freePages(), 0u);
}

TEST_F(BuddyFixture, LargeOrderAfterFragmentationFails)
{
    // Allocate everything, free every other page: max fragmentation.
    std::vector<Gpfn> held;
    while (true) {
        const Gpfn pfn = buddy.alloc(0);
        if (pfn == invalidGpfn)
            break;
        held.push_back(pfn);
    }
    for (std::size_t i = 0; i < held.size(); i += 2)
        buddy.free(held[i], 0);
    EXPECT_EQ(buddy.alloc(1), invalidGpfn);
    EXPECT_GT(buddy.freePages(), 0u);
    buddy.checkInvariants();
}

TEST_F(BuddyFixture, RemoveFreePagePrefersSmallBlocks)
{
    const Gpfn a = buddy.alloc(0); // creates small split blocks
    const Gpfn removed = buddy.removeFreePage();
    ASSERT_NE(removed, invalidGpfn);
    EXPECT_EQ(buddy.managedPages(), span - 1);
    // Give it back via addFreeRange (balloon deflate).
    buddy.addFreeRange(removed, 1);
    EXPECT_EQ(buddy.managedPages(), span);
    buddy.free(a, 0);
    buddy.checkInvariants();
}

TEST_F(BuddyFixture, DoubleFreePanics)
{
    const Gpfn pfn = buddy.alloc(0);
    buddy.free(pfn, 0);
    EXPECT_DEATH(buddy.free(pfn, 0), "double free|freeing");
}

TEST(BuddyAllocator, NonZeroBaseBlocks)
{
    PageArray pages(1 << 12);
    BuddyAllocator buddy(pages, 1024, 2048);
    buddy.addFreeRange(1024, 2048);
    const Gpfn pfn = buddy.alloc(4);
    ASSERT_NE(pfn, invalidGpfn);
    EXPECT_GE(pfn, 1024u);
    EXPECT_LT(pfn + 16, 1024u + 2048u);
    EXPECT_EQ((pfn - 1024) % 16, 0u) << "alignment is base-relative";
    buddy.free(pfn, 4);
    buddy.checkInvariants();
}

/** Property sweep: random alloc/free traffic preserves invariants. */
class BuddyChurn : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BuddyChurn, RandomTrafficKeepsInvariants)
{
    const std::uint64_t seed = GetParam();
    hos::sim::Rng rng(seed);
    constexpr std::uint64_t span = 1 << 13;
    PageArray pages(span);
    BuddyAllocator buddy(pages, 0, span);
    buddy.addFreeRange(0, span);

    std::vector<std::pair<Gpfn, unsigned>> held;
    for (int step = 0; step < 4000; ++step) {
        if (held.empty() || rng.chance(0.55)) {
            const auto order = static_cast<unsigned>(rng.uniformInt(5));
            const Gpfn pfn = buddy.alloc(order);
            if (pfn != invalidGpfn)
                held.emplace_back(pfn, order);
        } else {
            const auto idx = rng.uniformInt(held.size());
            buddy.free(held[idx].first, held[idx].second);
            held[idx] = held.back();
            held.pop_back();
        }
    }
    buddy.checkInvariants();
    std::uint64_t held_pages = 0;
    for (auto [pfn, order] : held)
        held_pages += 1ull << order;
    EXPECT_EQ(buddy.freePages() + held_pages, span);

    for (auto [pfn, order] : held)
        buddy.free(pfn, order);
    EXPECT_EQ(buddy.freePages(), span);
    buddy.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyChurn,
                         ::testing::Values(1, 7, 42, 1337, 99991));

} // namespace
