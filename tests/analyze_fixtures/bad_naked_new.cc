// Fixture: naked-new. Raw owning new instead of make_unique. Never
// compiled.
struct Tracker {
    int x = 0;
};

Tracker *
makeTracker()
{
    Tracker *t = new Tracker();
    (void)t;
    return new Tracker();
}
