// Fixture: metrics-purity. Three violations: floating point in a
// src/metrics file (the test lexes this under a virtual src/metrics/
// path), a mutating call under a HOS_METRICS_LEVEL guard, and a
// mutating call inside a metrics::active() observation block. Never
// compiled.
struct Kernel;
enum class OverheadKind { HotScan };

double
slowdownFactor(unsigned long actual, unsigned long ideal)
{
    return ideal == 0 ? 1.0
                      : static_cast<double>(actual) /
                            static_cast<double>(ideal);
}

void
sample(Kernel &kernel)
{
#if HOS_METRICS_LEVEL >= 1
    kernel.charge(OverheadKind::HotScan, 7);
#endif
    if (metrics::active()) {
        kernel.migrateBatch(42);
    }
}
