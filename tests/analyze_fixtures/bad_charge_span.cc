// Fixture: charge-span. A kernel charge with no HOS_PROF_SPAN
// anywhere in the enclosing function. Never compiled.
struct Kernel;
enum class OverheadKind { Io };
void charge(Kernel &k, OverheadKind kind, long cost);

void
fillPage(Kernel &kernel)
{
    kernel.charge(OverheadKind::Io, 125);
}
