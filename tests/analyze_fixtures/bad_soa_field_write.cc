// Fixture: soa-field-write. Page metadata writes that bypass the
// PageRef facade — AoS-style member assignments to retired Page
// fields and direct indexing of PageArray's SoA columns. Never
// compiled.
struct FakePage;

void
corrupt(FakePage &p, FakePage *q)
{
    p.pte_accessed = true;        // member write through retired field
    q->last_touch = 7;            // arrow form
    p.buddy_order += 1;           // compound assignment
    heat_[42] = 9;                // direct SoA column indexing
    meta_[7].list_id = 0;         // column indexing + field write
}
