// Fixture: telemetry-purity. Mutating calls in telemetry-only
// regions: a HOS_XRAY_LEVEL preprocessor guard and an
// xray::active() observation block. Never compiled.
struct Kernel;
enum class OverheadKind { HotScan };

void
observe(Kernel &kernel)
{
    HOS_PROF_SPAN(span, prof::SpanKind::ScanPass, kernel.events());
#if HOS_XRAY_LEVEL >= 1
    kernel.charge(OverheadKind::HotScan, 7);
#endif
    if (xray::active()) {
        kernel.demotePage(42);
    }
}
