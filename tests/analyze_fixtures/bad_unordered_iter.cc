// Fixture: unordered-iter. Range-for over a local std::unordered_map
// and an explicit .begin() on it. Never compiled.
#include <unordered_map>

int
sumAll()
{
    std::unordered_map<int, int> counts;
    int total = 0;
    for (auto &kv : counts)
        total += kv.second;
    auto it = counts.begin();
    (void)it;
    return total;
}
