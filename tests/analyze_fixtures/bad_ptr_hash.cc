// Fixture: ptr-hash. Hashing a pointer hashes its address. Never
// compiled.
#include <cstddef>
#include <functional>

struct Page;

std::size_t
hashPage(Page *p)
{
    return std::hash<Page *>{}(p);
}
