// Fixture: the near-misses. Every pattern here is legal and must not
// trip any rule — ordered iteration, declaration shapes that look
// like calls, structured hotness keys, spanned charges. Never
// compiled.
#include <map>
#include <memory>
#include <unordered_map>

struct Kernel;
enum class OverheadKind { Io };

// A charge *declaration* binds a parameter, not an enumerator: not a
// call site, must not trip charge-span.
void charge(OverheadKind kind, long cost);

struct Tracker {
    int x = 0;
};

int
orderedWalk()
{
    std::map<int, int> counts;
    int total = 0;
    for (auto &kv : counts)
        total += kv.second;
    return total;
}

int
pointLookups()
{
    // Unordered state is fine as long as nothing iterates it.
    std::unordered_map<int, int> heat;
    heat[3] = 7;
    auto it = heat.find(3);
    return it == heat.end() ? 0 : it->second;
}

std::unique_ptr<Tracker>
makeTracker()
{
    hos_assert(true, "ownership is typed");
    return std::make_unique<Tracker>();
}

void
spannedCharge(Kernel &kernel)
{
    HOS_PROF_SPAN(span, prof::SpanKind::IoFill, kernel.events());
    kernel.charge(OverheadKind::Io, 125);
}

void
rungRetarget(VmContext &vm, unsigned long gpfn, unsigned long mfn,
             int tier)
{
    vm.p2m_.set(gpfn, mfn, tier);
    vm.xray().onTierChange(gpfn, tier);
}

void
facadeWrites(PageArrayLike &pages)
{
    // Page state through the facade: setters and reads are fine, as
    // are comparisons against the retired field names.
    auto p = pages.page(7);
    p.setPteAccessed(true);
    p.setLastTouch(9);
    pages.setAllocated(7, true);
    if (p.last_touch() == 9 && p.list_id() != 0)
        p.setHeat(42);
    // Same-name members of unrelated types are not page state.
    int last_touched_row = 3;
    (void)last_touched_row;
}

const char *
structuredKeys()
{
    // Structured spellings and longer words that embed a loose key.
    return "hotness.interval_ms=75 scan_interval=5 --stats-interval=9";
}
