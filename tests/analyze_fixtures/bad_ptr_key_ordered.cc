// Fixture: ptr-key-ordered. std::map keyed on a raw pointer orders by
// allocation address. Never compiled.
#include <map>

struct Vm;

std::map<Vm *, int> runnable_;
