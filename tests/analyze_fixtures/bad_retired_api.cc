// Fixture: retired-api. Pre-Scenario API names that were removed in
// the Scenario redesign. Never compiled.
struct RunSpec;

void
launch(RunSpec &spec)
{
    runApp(spec);
}
