// Fixture: loose-hotness-key. Deprecated loose hotness keys in
// scenario literals (the test lexes this under a virtual tests/
// path). Never compiled.
void applyScenarioParam(int &s, const char *k, const char *v);

void
configure(int &s)
{
    applyScenarioParam(s, "interval", "75");
    applyScenarioParam(s, "pages_per_scan", "512");
    const char *axis = "hot_threshold=90";
    const char *doc = "{\"adaptive\": true}";
    (void)axis;
    (void)doc;
}
