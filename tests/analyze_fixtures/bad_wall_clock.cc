// Fixture: wall-clock. Host clocks in simulation code diverge under
// the parallel sweep runner. Never compiled.
#include <chrono>
#include <cstdint>

std::uint64_t
stampNow()
{
    const auto t = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(t.time_since_epoch().count());
}
