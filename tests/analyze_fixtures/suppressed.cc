// Fixture: real violations silenced by suppression comments — both
// the preceding-line and same-line forms, plus the
// ordered-insensitive alias for unordered-iter. Never compiled.
#include <cassert>
#include <unordered_map>

int
sampleAny()
{
    std::unordered_map<int, int> counts;
    int total = 0;
    // hos-analyze: ordered-insensitive (fixture: order truly unused)
    for (auto &kv : counts)
        total += kv.second;
    assert(total >= 0); // hos-analyze: raw-assert (fixture)
    return total;
}
