// Fixture: tier-xray. A P2M retarget with no onTierChange/onGuestMove
// in the enclosing function. Never compiled.
struct P2m;
struct VmContext;

void
retargetOne(VmContext &vm, unsigned long gpfn, unsigned long mfn,
            int tier)
{
    vm.p2m_.set(gpfn, mfn, tier);
}
