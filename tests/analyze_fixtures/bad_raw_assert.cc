// Fixture: raw-assert. assert() compiles out under NDEBUG; sim code
// must use hos_assert. Never compiled.
#include <cassert>

void
checkFrames(int frames)
{
    assert(frames >= 0);
}
