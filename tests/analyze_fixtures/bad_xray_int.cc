// Fixture: xray-int. Floating point in src/xray (the test lexes this
// under a virtual src/xray/ path). Never compiled.
double
misplacedFrac(unsigned long num, unsigned long den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) /
                          static_cast<float>(den);
}
