/**
 * @file
 * PageCache: hit/miss behavior, read-ahead, write dirtying,
 * write-back, eviction, and tier remapping.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

struct CacheFixture : ::testing::Test
{
    std::unique_ptr<GuestKernel> kernel = test::standaloneGuest();
    PageCache *pc = nullptr;

    void
    SetUp() override
    {
        pc = &kernel->pageCache();
    }
};

TEST_F(CacheFixture, ColdReadMissesWarmReadHits)
{
    const FileId f = pc->createFile(16 * mem::mib);
    auto r1 = pc->read(f, 0, 64 * mem::kib);
    EXPECT_GT(r1.pages_missed, 0u);
    EXPECT_GT(r1.disk_time, 0u);

    auto r2 = pc->read(f, 0, 64 * mem::kib);
    EXPECT_EQ(r2.pages_missed, 0u);
    EXPECT_EQ(r2.disk_time, 0u);
    EXPECT_EQ(r2.pages.size(), 16u);
}

TEST_F(CacheFixture, SequentialReadsTriggerReadAhead)
{
    const FileId f = pc->createFile(16 * mem::mib);
    auto r1 = pc->read(f, 0, 4 * mem::kib);
    // First read is not sequential; second, contiguous one is and
    // pulls the read-ahead window.
    auto r2 = pc->read(f, 4 * mem::kib, 4 * mem::kib);
    EXPECT_GT(r2.pages.size(), 1u) << "read-ahead extended the fetch";
    // The requested page now hits; read-ahead may prefetch further.
    auto r3 = pc->read(f, 8 * mem::kib, 4 * mem::kib);
    EXPECT_FALSE(r3.pages.empty());
    EXPECT_LE(r3.pages_missed, r3.pages.size() - 1);
}

TEST_F(CacheFixture, WriteDirtiesAndWritebackCleans)
{
    const FileId f = pc->createFile(mem::mib);
    pc->write(f, 0, 32 * mem::kib);
    EXPECT_EQ(pc->dirtyPages(), 8u);

    const auto t = pc->writeback(1000);
    EXPECT_GT(t, 0u);
    EXPECT_EQ(pc->dirtyPages(), 0u);
    EXPECT_EQ(pc->writeback(1000), 0u) << "nothing left to write";
}

TEST_F(CacheFixture, WriteExtendsFile)
{
    const FileId f = pc->createFile(0);
    pc->write(f, 0, 10 * mem::kib);
    EXPECT_EQ(pc->fileSize(f), 10 * mem::kib);
}

TEST_F(CacheFixture, EvictRefusesDirtyAcceptsClean)
{
    const FileId f = pc->createFile(mem::mib);
    auto w = pc->write(f, 0, 4 * mem::kib);
    ASSERT_EQ(w.pages.size(), 1u);
    const Gpfn pfn = w.pages[0];
    EXPECT_FALSE(pc->evictPage(pfn)) << "dirty pages stay";
    pc->writeback(10);
    EXPECT_TRUE(pc->evictPage(pfn));
    EXPECT_FALSE(pc->owns(pfn));
    EXPECT_FALSE(kernel->pageMeta(pfn).allocated());
}

TEST_F(CacheFixture, MapPageSharesWithBufferedPath)
{
    const FileId f = pc->createFile(mem::mib);
    sim::Duration io = 0;
    const Gpfn a = pc->mapPage(f, 0, MemHint::None, io);
    EXPECT_GT(io, 0u);
    auto r = pc->read(f, 0, 4 * mem::kib);
    ASSERT_EQ(r.pages.size(), 1u);
    EXPECT_EQ(r.pages[0], a);
}

TEST_F(CacheFixture, RemapPageMovesMapping)
{
    const FileId f = pc->createFile(mem::mib);
    auto r = pc->read(f, 0, 4 * mem::kib);
    const Gpfn old_pfn = r.pages[0];

    auto *slow = kernel->nodeFor(mem::MemType::SlowMem);
    const Gpfn new_pfn =
        kernel->allocPageOnNode(slow->id(), PageType::PageCache);
    pc->remapPage(old_pfn, new_pfn);
    EXPECT_FALSE(pc->owns(old_pfn));
    EXPECT_TRUE(pc->owns(new_pfn));

    auto again = pc->read(f, 0, 4 * mem::kib);
    EXPECT_EQ(again.pages_missed, 0u);
    EXPECT_EQ(again.pages[0], new_pfn);
}

TEST_F(CacheFixture, RemapCarriesDirtyState)
{
    const FileId f = pc->createFile(mem::mib);
    auto w = pc->write(f, 0, 4 * mem::kib);
    const Gpfn old_pfn = w.pages[0];
    auto *slow = kernel->nodeFor(mem::MemType::SlowMem);
    const Gpfn new_pfn =
        kernel->allocPageOnNode(slow->id(), PageType::PageCache);
    pc->remapPage(old_pfn, new_pfn);
    EXPECT_TRUE(kernel->pageMeta(new_pfn).dirty());
    EXPECT_EQ(pc->dirtyPages(), 1u);
    pc->writeback(10);
    EXPECT_FALSE(kernel->pageMeta(new_pfn).dirty());
}

TEST_F(CacheFixture, StatsTrackHitsAndMisses)
{
    const FileId f = pc->createFile(mem::mib);
    pc->read(f, 0, 8 * mem::kib);
    const auto misses = pc->misses();
    pc->read(f, 0, 8 * mem::kib);
    EXPECT_EQ(pc->misses(), misses);
    EXPECT_GT(pc->hits(), 0u);
}

} // namespace
