/**
 * @file
 * Rng: determinism, bounds, and distribution sanity.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace {

using hos::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(13);
    const std::uint64_t n = 1000;
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto v = rng.zipf(n, 0.99);
        ASSERT_LT(v, n);
        if (v < n / 10)
            ++low;
    }
    // With s~1, the top decile of ranks draws well over half the mass.
    EXPECT_GT(low, total / 2);
}

TEST(Rng, ZipfSingleElement)
{
    Rng rng(17);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.zipf(1, 0.9), 0u);
}

} // namespace
