/**
 * @file
 * Vmm + balloon back-end: registration boot-populates reservations,
 * on-demand growth, surrender, tier routing, and hidden-VM backing.
 */

#include <gtest/gtest.h>

#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "vmm/vmm.hh"

namespace {

using namespace hos;

struct VmmFixture : ::testing::Test
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> hypervisor;

    void
    SetUp() override
    {
        machine.addNode(mem::MemType::FastMem, mem::dramSpec(16 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(64 * mem::mib));
        hypervisor = std::make_unique<vmm::Vmm>(machine);
    }

    guestos::GuestConfig
    guestCfg(std::uint64_t fast_init, std::uint64_t slow_init)
    {
        guestos::GuestConfig cfg;
        cfg.name = "vm";
        cfg.cpus = 2;
        cfg.nodes = {{mem::MemType::FastMem, 16 * mem::mib, fast_init},
                     {mem::MemType::SlowMem, 64 * mem::mib, slow_init}};
        return cfg;
    }
};

TEST_F(VmmFixture, RegistrationBootPopulates)
{
    guestos::GuestKernel guest(guestCfg(4 * mem::mib, 16 * mem::mib));
    const auto id = hypervisor->registerVm(guest, {});
    auto &vm = hypervisor->vm(id);

    EXPECT_EQ(vm.framesOf(mem::MemType::FastMem),
              mem::bytesToPages(4 * mem::mib));
    EXPECT_EQ(vm.framesOf(mem::MemType::SlowMem),
              mem::bytesToPages(16 * mem::mib));
    EXPECT_EQ(guest.node(0).freePages(),
              mem::bytesToPages(4 * mem::mib));
    EXPECT_EQ(hypervisor->usedFrames(mem::MemType::FastMem),
              mem::bytesToPages(4 * mem::mib));
}

TEST_F(VmmFixture, BalloonGrowsReservationOnDemand)
{
    guestos::GuestKernel guest(guestCfg(4 * mem::mib, 16 * mem::mib));
    hypervisor->registerVm(guest, {});
    const auto granted =
        guest.balloon().requestPages(mem::MemType::FastMem, 256);
    EXPECT_EQ(granted, 256u);
    EXPECT_EQ(guest.node(0).managedPages(),
              mem::bytesToPages(4 * mem::mib) + 256);
}

TEST_F(VmmFixture, GrowthCapsAtContractMax)
{
    guestos::GuestKernel guest(guestCfg(4 * mem::mib, 16 * mem::mib));
    hypervisor->registerVm(guest, {});
    // Node span (and default max) is 16 MiB = 4096 pages; 1024 are
    // populated. Asking for far more grants only up to the ceiling.
    const auto granted =
        guest.balloon().requestPages(mem::MemType::FastMem, 100000);
    EXPECT_EQ(granted, 4096u - 1024u);
    EXPECT_EQ(guest.balloon()
                  .requestPages(mem::MemType::FastMem, 1),
              0u);
}

TEST_F(VmmFixture, SurrenderReturnsFrames)
{
    guestos::GuestKernel guest(guestCfg(8 * mem::mib, 16 * mem::mib));
    const auto id = hypervisor->registerVm(guest, {});
    auto &vm = hypervisor->vm(id);
    const auto before_free =
        hypervisor->freeFrames(mem::MemType::FastMem);

    const auto given =
        guest.balloon().surrenderPages(mem::MemType::FastMem, 512);
    EXPECT_EQ(given, 512u);
    EXPECT_EQ(hypervisor->freeFrames(mem::MemType::FastMem),
              before_free + 512);
    EXPECT_EQ(vm.framesOf(mem::MemType::FastMem),
              mem::bytesToPages(8 * mem::mib) - 512);
}

TEST_F(VmmFixture, HiddenVmBacksSlowFirst)
{
    guestos::GuestConfig cfg;
    cfg.name = "hidden";
    cfg.cpus = 2;
    // One homogeneous node spanning 32 MiB.
    cfg.nodes = {{mem::MemType::SlowMem, 32 * mem::mib, 32 * mem::mib}};
    guestos::GuestKernel guest(cfg);

    vmm::VmConfig vcfg;
    vcfg.hide_heterogeneity = true;
    const auto id = hypervisor->registerVm(guest, vcfg);
    auto &vm = hypervisor->vm(id);

    // 32 MiB fits entirely in the 64 MiB SlowMem tier.
    EXPECT_EQ(vm.framesOf(mem::MemType::SlowMem),
              mem::bytesToPages(32 * mem::mib));
    EXPECT_EQ(vm.framesOf(mem::MemType::FastMem), 0u);
    EXPECT_TRUE(vm.fastBacked().empty());
}

TEST_F(VmmFixture, HiddenVmSpillsToFastWhenSlowDrains)
{
    // First VM eats most of SlowMem.
    guestos::GuestConfig big;
    big.name = "big";
    big.cpus = 2;
    big.nodes = {{mem::MemType::SlowMem, 56 * mem::mib, 56 * mem::mib}};
    guestos::GuestKernel guest1(big);
    vmm::VmConfig vcfg;
    vcfg.hide_heterogeneity = true;
    hypervisor->registerVm(guest1, vcfg);

    // The second hidden VM must split across tiers.
    guestos::GuestConfig cfg;
    cfg.name = "second";
    cfg.cpus = 2;
    cfg.nodes = {{mem::MemType::SlowMem, 12 * mem::mib, 12 * mem::mib}};
    guestos::GuestKernel guest2(cfg);
    const auto id = hypervisor->registerVm(guest2, vcfg);
    auto &vm = hypervisor->vm(id);

    EXPECT_EQ(vm.framesOf(mem::MemType::SlowMem),
              mem::bytesToPages(8 * mem::mib));
    EXPECT_EQ(vm.framesOf(mem::MemType::FastMem),
              mem::bytesToPages(4 * mem::mib));
    EXPECT_EQ(vm.fastBacked().size(),
              mem::bytesToPages(4 * mem::mib));
}

TEST_F(VmmFixture, TwoVmsShareThePool)
{
    guestos::GuestKernel a(guestCfg(8 * mem::mib, 16 * mem::mib));
    guestos::GuestKernel b(guestCfg(8 * mem::mib, 16 * mem::mib));
    hypervisor->registerVm(a, {});
    hypervisor->registerVm(b, {});
    EXPECT_EQ(hypervisor->freeFrames(mem::MemType::FastMem), 0u);
    // A third's boot request gets nothing from FastMem.
    guestos::GuestKernel c(guestCfg(4 * mem::mib, 8 * mem::mib));
    hypervisor->registerVm(c, {});
    EXPECT_EQ(hypervisor->vm(2).framesOf(mem::MemType::FastMem), 0u);
}

} // namespace
