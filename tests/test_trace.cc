/**
 * @file
 * Event tracing: ring-buffer semantics, category filtering, exporter
 * well-formedness, timestamp ordering, and run-to-run determinism.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "test_helpers.hh"
#include "trace/exporters.hh"
#include "trace/trace.hh"

namespace {

using namespace hos;
using trace::EventType;
using trace::Record;
using trace::Tracer;

TEST(TraceRing, FillsThenWrapsOverwritingOldest)
{
    Tracer t;
    t.setCapacity(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(EventType::PageAlloc, /*ts=*/i * 100, /*a0=*/i);

    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);

    // Survivors are the newest four, visited oldest-first.
    std::vector<std::uint64_t> seen;
    t.forEach([&](const Record &r) { seen.push_back(r.a0); });
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(TraceRing, ClearResetsCounters)
{
    Tracer t;
    t.setCapacity(2);
    t.record(EventType::PageFree, 1);
    t.record(EventType::PageFree, 2);
    t.record(EventType::PageFree, 3);
    EXPECT_EQ(t.dropped(), 1u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(TraceCategories, ParseNamesAndAll)
{
    using trace::Category;
    EXPECT_EQ(trace::parseCategories(""),
              static_cast<std::uint32_t>(Category::All));
    EXPECT_EQ(trace::parseCategories("all"),
              static_cast<std::uint32_t>(Category::All));
    EXPECT_EQ(trace::parseCategories("migration"),
              static_cast<std::uint32_t>(Category::Migration));
    EXPECT_EQ(trace::parseCategories("migration,scan"),
              static_cast<std::uint32_t>(Category::Migration) |
                  static_cast<std::uint32_t>(Category::Scan));
    // Unknown names are skipped (with a warning), known ones kept.
    EXPECT_EQ(trace::parseCategories("bogus,swap"),
              static_cast<std::uint32_t>(Category::Swap));
}

TEST(TraceCategories, MaskFiltersEmit)
{
    trace::tracer().setCapacity(64);
    trace::tracer().enable(
        static_cast<std::uint32_t>(trace::Category::Migration));

    trace::emit(EventType::PageAlloc, 10);       // alloc: filtered
    trace::emit(EventType::MigrationStart, 20);  // migration: kept
    trace::emit(EventType::SwapOut, 30);         // swap: filtered
    trace::emit(EventType::MigrationComplete, 40);

    EXPECT_EQ(trace::tracer().size(), 2u);
    trace::tracer().forEach([](const Record &r) {
        EXPECT_EQ(trace::eventTypeInfo(r.type).category,
                  trace::Category::Migration);
    });

    trace::tracer().disable();
    trace::emit(EventType::MigrationStart, 50); // disabled: dropped
    EXPECT_EQ(trace::tracer().size(), 2u);
    trace::tracer().clear();
}

TEST(TraceExport, ChromeJsonIsWellFormed)
{
    Tracer t;
    t.setCapacity(16);
    t.record(EventType::PageAlloc, 1000, 1, 42, 0);
    t.record(EventType::HotnessScan, 2000, 512, 33, 7,
             /*dur=*/1500, /*vm=*/1);
    t.record(EventType::MigrationComplete, 3000, 8, 2, 0, /*dur=*/24000);

    std::ostringstream os;
    trace::writeChromeJson(t, os);
    const std::string json = os.str();

    EXPECT_TRUE(hos::test::jsonWellFormed(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"page_alloc\""), std::string::npos);
    EXPECT_NE(json.find("\"hotness_scan\""), std::string::npos);
    // Events with a duration become complete ("X") events, others
    // instants ("i").
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"scanned\""), std::string::npos);
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerRecord)
{
    Tracer t;
    t.setCapacity(8);
    t.record(EventType::SwapOut, 500, 16, 16);
    t.record(EventType::SwapIn, 900, 4, 12);

    std::ostringstream os;
    trace::writeCsv(t, os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("ts_ns,dur_ns,type,category,vm,a0,a1,a2"),
              std::string::npos);
    EXPECT_NE(csv.find("swap_out"), std::string::npos);
    EXPECT_NE(csv.find("swap_in"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(TraceExport, TimestampsMonotonicallyNonDecreasing)
{
    // Interleaved clocks (multi-VM lockstep): records arrive out of
    // global time order; the exporter must still emit sorted ts.
    Tracer t;
    t.setCapacity(16);
    t.record(EventType::PageAlloc, 5000);
    t.record(EventType::PageAlloc, 1000, 0, 0, 0, 0, 1);
    t.record(EventType::PageAlloc, 3000);
    t.record(EventType::PageAlloc, 1000, 0, 0, 0, 0, 2);

    std::ostringstream os;
    trace::writeChromeJson(t, os);
    const std::string json = os.str();

    double last = -1.0;
    std::size_t pos = 0;
    int count = 0;
    while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
        pos += 5;
        const double ts = std::stod(json.substr(pos));
        EXPECT_GE(ts, last);
        last = ts;
        ++count;
    }
    EXPECT_EQ(count, 4);
}

TEST(TraceDeterminism, IdenticalRunsProduceIdenticalTraces)
{
    auto run = [] {
        trace::tracer().setCapacity(1u << 12);
        trace::tracer().enable(
            static_cast<std::uint32_t>(trace::Category::All));

        auto kernel = hos::test::standaloneGuest(8 * mem::mib,
                                                 32 * mem::mib);
        kernel->startDaemons();
        guestos::AllocRequest req;
        req.type = guestos::PageType::Anon;
        for (int burst = 0; burst < 4; ++burst) {
            for (int i = 0; i < 1500; ++i)
                kernel->allocPage(req);
            kernel->events().runUntil(
                sim::milliseconds(60) * (burst + 1));
        }

        trace::tracer().disable();
        std::ostringstream os;
        trace::writeChromeJson(trace::tracer(), os);
        trace::tracer().clear();
        return os.str();
    };

    const std::string first = run();
    const std::string second = run();
    EXPECT_GT(first.size(), 100u);
    EXPECT_EQ(first, second);
}

} // namespace
