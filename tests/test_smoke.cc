/**
 * @file
 * End-to-end smoke tests: every approach boots a VM and completes a
 * tiny run of every application without tripping an invariant.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/report.hh"

namespace {

using namespace hos;

core::Scenario
tinyScenario(core::Approach a)
{
    return core::Scenario{}
        .withApproach(a)
        .withCapacity(256 * mem::mib, 1 * mem::gib)
        .withScale(0.02);
}

TEST(Smoke, EveryApproachRunsGraphChi)
{
    for (core::Approach a : core::allApproaches) {
        auto res = core::run(tinyScenario(a));
        EXPECT_GT(res.elapsed, 0u) << core::approachName(a);
        EXPECT_GT(res.phases, 0u) << core::approachName(a);
    }
}

TEST(Smoke, EveryAppRunsUnderHeteroLru)
{
    for (workload::AppId app : workload::allApps) {
        auto res = core::run(
            tinyScenario(core::Approach::HeteroLru).withApp(app));
        EXPECT_GT(res.elapsed, 0u) << workload::appName(app);
    }
}

TEST(Smoke, FastMemOnlyBeatsSlowMemOnly)
{
    auto fast = core::run(tinyScenario(core::Approach::FastMemOnly));
    auto slow = core::run(tinyScenario(core::Approach::SlowMemOnly));
    EXPECT_LT(fast.elapsed, slow.elapsed);
    EXPECT_GT(core::slowdownFactor(fast, slow), 1.05);
}

} // namespace
