/**
 * @file
 * End-to-end smoke tests: every approach boots a VM and completes a
 * tiny run of every application without tripping an invariant.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/report.hh"

namespace {

using namespace hos;

core::RunSpec
tinySpec(core::Approach a)
{
    core::RunSpec spec;
    spec.approach = a;
    spec.fast_bytes = 256 * mem::mib;
    spec.slow_bytes = 1 * mem::gib;
    spec.scale = 0.02;
    return spec;
}

TEST(Smoke, EveryApproachRunsGraphChi)
{
    for (core::Approach a :
         {core::Approach::SlowMemOnly, core::Approach::FastMemOnly,
          core::Approach::Random, core::Approach::NumaPreferred,
          core::Approach::HeapOd, core::Approach::HeapIoSlabOd,
          core::Approach::HeteroLru, core::Approach::VmmExclusive,
          core::Approach::Coordinated}) {
        auto res = core::runApp(workload::AppId::GraphChi, tinySpec(a));
        EXPECT_GT(res.elapsed, 0u) << core::approachName(a);
        EXPECT_GT(res.phases, 0u) << core::approachName(a);
    }
}

TEST(Smoke, EveryAppRunsUnderHeteroLru)
{
    for (workload::AppId app : workload::allApps) {
        auto res = core::runApp(app, tinySpec(core::Approach::HeteroLru));
        EXPECT_GT(res.elapsed, 0u) << workload::appName(app);
    }
}

TEST(Smoke, FastMemOnlyBeatsSlowMemOnly)
{
    auto fast = core::runApp(workload::AppId::GraphChi,
                             tinySpec(core::Approach::FastMemOnly));
    auto slow = core::runApp(workload::AppId::GraphChi,
                             tinySpec(core::Approach::SlowMemOnly));
    EXPECT_LT(fast.elapsed, slow.elapsed);
    EXPECT_GT(core::slowdownFactor(fast, slow), 1.05);
}

} // namespace
