/**
 * @file
 * MachineMemory / MachineNode: frame allocation, ownership tracking,
 * exhaustion, and MFN-range routing.
 */

#include <gtest/gtest.h>

#include "mem/machine_memory.hh"

namespace {

using namespace hos::mem;

TEST(MachineNode, AllocatesAscendingUniqueFrames)
{
    MachineMemory mm;
    mm.addNode(MemType::FastMem, dramSpec(mib)); // 256 frames
    auto &node = mm.node(0);
    EXPECT_EQ(node.totalFrames(), 256u);

    auto a = node.allocFrame(firstVmOwner);
    auto b = node.allocFrame(firstVmOwner);
    ASSERT_TRUE(a && b);
    EXPECT_NE(*a, *b);
    EXPECT_EQ(node.frameOwner(*a), firstVmOwner);
    EXPECT_EQ(node.usedFrames(), 2u);
}

TEST(MachineNode, ExhaustionReturnsNullopt)
{
    MachineMemory mm;
    mm.addNode(MemType::FastMem, dramSpec(mib));
    auto &node = mm.node(0);
    auto frames = node.allocFrames(firstVmOwner, 1000);
    EXPECT_EQ(frames.size(), 256u);
    EXPECT_FALSE(node.allocFrame(firstVmOwner).has_value());
    EXPECT_EQ(node.freeFrames(), 0u);
}

TEST(MachineNode, FreeReturnsFramesForReuse)
{
    MachineMemory mm;
    mm.addNode(MemType::FastMem, dramSpec(mib));
    auto &node = mm.node(0);
    auto frames = node.allocFrames(firstVmOwner, 256);
    for (Mfn mfn : frames)
        node.freeFrame(mfn);
    EXPECT_EQ(node.freeFrames(), 256u);
    EXPECT_EQ(node.framesOwnedBy(firstVmOwner), 0u);
    EXPECT_TRUE(node.allocFrame(firstVmOwner).has_value());
}

TEST(MachineNode, OwnerAccountingPerOwner)
{
    MachineMemory mm;
    mm.addNode(MemType::SlowMem, dramSpec(mib));
    auto &node = mm.node(0);
    node.allocFrames(firstVmOwner, 10);
    node.allocFrames(firstVmOwner + 1, 5);
    EXPECT_EQ(node.framesOwnedBy(firstVmOwner), 10u);
    EXPECT_EQ(node.framesOwnedBy(firstVmOwner + 1), 5u);
    EXPECT_EQ(node.framesOwnedBy(ownerVmm), 0u);
}

TEST(MachineMemory, MfnRangesAreDisjointAndRoutable)
{
    MachineMemory mm;
    mm.addNode(MemType::FastMem, dramSpec(mib));
    mm.addNode(MemType::SlowMem, dramSpec(2 * mib));
    auto &fast = mm.node(0);
    auto &slow = mm.node(1);
    EXPECT_EQ(slow.mfnBase(), fast.mfnBase() + fast.totalFrames());

    auto f = fast.allocFrame(firstVmOwner);
    auto s = slow.allocFrame(firstVmOwner);
    ASSERT_TRUE(f && s);
    EXPECT_EQ(&mm.nodeOfMfn(*f), &fast);
    EXPECT_EQ(&mm.nodeOfMfn(*s), &slow);
}

TEST(MachineMemory, TypeLookup)
{
    MachineMemory mm;
    mm.addNode(MemType::FastMem, dramSpec(mib));
    EXPECT_TRUE(mm.hasType(MemType::FastMem));
    EXPECT_FALSE(mm.hasType(MemType::SlowMem));
    EXPECT_EQ(mm.nodeByType(MemType::FastMem).nodeId(), 0u);
}

TEST(MachineNode, DoubleFreePanics)
{
    MachineMemory mm;
    mm.addNode(MemType::FastMem, dramSpec(mib));
    auto &node = mm.node(0);
    auto f = node.allocFrame(firstVmOwner);
    node.freeFrame(*f);
    EXPECT_DEATH(node.freeFrame(*f), "double free");
}

} // namespace
