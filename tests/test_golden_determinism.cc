/**
 * @file
 * Golden determinism: the ResidencyIndex fast path, the legacy
 * placement-sampling path, and the free-run sweep skip must all
 * produce bit-identical simulated results — the optimizations change
 * host time only. A pinned scenario matrix is run in every mode and
 * the full Result (elapsed ticks, phases, metric, instruction and
 * LLC-miss counts) compared field for field. Double runs of the same
 * mode pin plain determinism too.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "policy/vmm_exclusive.hh"
#include "prof/report.hh"
#include "vmm/drf.hh"
#include "workload/apps.hh"
#include "xray/report.hh"

namespace {

using namespace hos;

/** Every simulated field of a Result, rendered exactly. */
std::string
fingerprint(const workload::Workload::Result &r)
{
    std::ostringstream os;
    os.precision(17);
    os << r.workload << '|' << r.elapsed << '|' << r.phases << '|'
       << r.metric << '|' << r.metric_name << '|' << r.instructions
       << '|' << r.llc_misses << '|' << r.mpki;
    return os.str();
}

/** The pinned matrix: one scenario per approach under test. */
std::vector<core::Scenario>
goldenMatrix()
{
    std::vector<core::Scenario> matrix;
    for (const core::Approach a :
         {core::Approach::HeteroLru, core::Approach::VmmExclusive,
          core::Approach::Coordinated}) {
        matrix.push_back(core::Scenario{}
                             .withApp(workload::AppId::GraphChi)
                             .withApproach(a)
                             .withScale(0.02)
                             .withCapacity(24 * mem::mib, 96 * mem::mib)
                             .withSeed(3));
    }
    return matrix;
}

TEST(GoldenDeterminism, PteScanMatchesPrePluggableBackends)
{
    // Fingerprints captured at the commit immediately before the
    // HotnessTracker interface extraction. The pte_scan backend is a
    // pure code motion of the old concrete tracker, so the refactor
    // (and backend selection via the scenario hotness spec) must not
    // move a single bit of any golden-matrix result.
    const char *pinned[] = {
        "GraphChi|34468671|8|0.034468670999999999|time(sec)"
        "|240000000|317304|1.3221000000000001",
        "GraphChi|45152182|8|0.045152181999999999|time(sec)"
        "|240000000|317304|1.3221000000000001",
        "GraphChi|34468671|8|0.034468670999999999|time(sec)"
        "|240000000|317304|1.3221000000000001",
    };
    const auto matrix = goldenMatrix();
    ASSERT_EQ(matrix.size(), std::size(pinned));
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        core::Scenario s = matrix[i];
        // Selecting pte_scan explicitly must be a no-op vs default.
        s.withHotnessBackend("pte_scan");
        EXPECT_EQ(fingerprint(core::run(s)), pinned[i])
            << "pte_scan diverged from the pre-interface tracker: "
            << s.label();
    }
}

TEST(GoldenDeterminism, SoaPageMetadataMatchesPreSoaStruct)
{
    // Fingerprints captured at the commit immediately before the
    // struct-of-arrays PageArray conversion (equal to the
    // pre-pluggable-backend pins above: every intervening PR held
    // the matrix bit-stable). The SoA columns, the PageRef accessor
    // facade, the lazy-reversal balloon stack, and the timer-wheel
    // event queue change memory layout and host time only — not one
    // bit of any simulated result.
    const char *pinned[] = {
        "GraphChi|34468671|8|0.034468670999999999|time(sec)"
        "|240000000|317304|1.3221000000000001",
        "GraphChi|45152182|8|0.045152181999999999|time(sec)"
        "|240000000|317304|1.3221000000000001",
        "GraphChi|34468671|8|0.034468670999999999|time(sec)"
        "|240000000|317304|1.3221000000000001",
    };
    const auto matrix = goldenMatrix();
    ASSERT_EQ(matrix.size(), std::size(pinned));
    for (std::size_t i = 0; i < matrix.size(); ++i) {
        EXPECT_EQ(fingerprint(core::run(matrix[i])), pinned[i])
            << "SoA page metadata diverged from the AoS layout: "
            << matrix[i].label();
    }
}

TEST(GoldenDeterminism, BalloonPeekCommitIsBitIdentical)
{
    // The lazy-reversal unpopulated stack (peek/commit) must grant
    // the same gpfns in the same order as the take/return protocol
    // it replaced. Ballooning only churns under overcommit, so this
    // runs the two-VM DRF configuration both ways.
    auto runPair = [&](bool legacy) {
        core::HostConfig host;
        host.fast = mem::dramSpec(24 * mem::mib);
        host.slow = mem::defaultSlowMemSpec(96 * mem::mib);
        core::HeteroSystem sys(host);
        sys.setLegacyBalloonPath(legacy);
        sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());

        core::GuestSizing g;
        g.name = "graphchi-vm";
        g.fast_max = 24 * mem::mib;
        g.fast_initial = 8 * mem::mib;
        g.slow_max = 96 * mem::mib;
        g.slow_initial = 48 * mem::mib;
        core::GuestSizing m = g;
        m.name = "metis-vm";
        m.fast_initial = 16 * mem::mib;
        m.seed = 7;

        auto &g_slot = sys.addVm(
            core::makePolicy(core::Approach::Coordinated), g);
        auto &m_slot = sys.addVm(
            core::makePolicy(core::Approach::Coordinated), m);
        const auto results = sys.runMany(
            {{&g_slot, workload::makeGraphchiTwitter(0.02)},
             {&m_slot, workload::makeMetisLarge(0.02)}});
        std::string f;
        for (const auto &r : results)
            f += fingerprint(r) + ";";
        return f;
    };
    EXPECT_EQ(runPair(false), runPair(true))
        << "peek/commit balloon path diverges from take/return";
}

TEST(GoldenDeterminism, SameScenarioTwiceIsBitIdentical)
{
    for (const core::Scenario &s : goldenMatrix()) {
        const auto first = core::run(s);
        const auto second = core::run(s);
        EXPECT_EQ(fingerprint(first), fingerprint(second))
            << "non-deterministic: " << s.label();
    }
}

TEST(GoldenDeterminism, LegacySamplingIsBitIdentical)
{
    for (const core::Scenario &s : goldenMatrix()) {
        const auto optimized = core::run(s);
        core::Scenario legacy = s;
        legacy.withLegacySampling(true);
        const auto sampled = core::run(legacy);
        EXPECT_EQ(fingerprint(optimized), fingerprint(sampled))
            << "residency index diverges from legacy sampling: "
            << s.label();
    }
}

TEST(GoldenDeterminism, ProfilingIsBitIdentical)
{
    // The span profiler observes charges; it must never create,
    // reorder, or resize them. Prof-on and prof-off runs of the
    // matrix must agree on every simulated field, and two prof-on
    // runs must serialize identical ledgers.
    for (const core::Scenario &s : goldenMatrix()) {
        const auto plain = core::run(s);

        auto profiled = [&] {
            core::Scenario p = s;
            p.withProfiling();
            auto sys = core::systemFor(p);
            auto result = sys->runOne(
                sys->slot(0), workload::makeApp(p.app, p.scale));
            std::ostringstream os;
            sim::JsonWriter w(os);
            prof::writeProfileReport(w, sys->profiler().report());
            return std::make_pair(fingerprint(result), os.str());
        };

        const auto first = profiled();
        EXPECT_EQ(fingerprint(plain), first.first)
            << "profiling perturbed the simulation: " << s.label();

        const auto second = profiled();
        EXPECT_EQ(first.first, second.first)
            << "profiled run non-deterministic: " << s.label();
        EXPECT_EQ(first.second, second.second)
            << "ledger non-deterministic: " << s.label();
    }
}

TEST(GoldenDeterminism, XrayIsBitIdentical)
{
    // xray shadows decisions; it must never make them. Xray-on and
    // xray-off runs of the matrix must agree on every simulated
    // field, and two xray-on runs must serialize identical reports.
    for (const core::Scenario &s : goldenMatrix()) {
        const auto plain = core::run(s);

        auto xrayed = [&] {
            core::Scenario x = s;
            x.withXray();
            auto sys = core::systemFor(x);
            auto result = sys->runOne(
                sys->slot(0), workload::makeApp(x.app, x.scale));
            std::ostringstream os;
            sim::JsonWriter w(os);
            xray::writeXrayReport(w, sys->xrayRecorder().report());
            return std::make_pair(fingerprint(result), os.str());
        };

        const auto first = xrayed();
        EXPECT_EQ(fingerprint(plain), first.first)
            << "xray perturbed the simulation: " << s.label();

        const auto second = xrayed();
        EXPECT_EQ(first.first, second.first)
            << "xrayed run non-deterministic: " << s.label();
        EXPECT_EQ(first.second, second.second)
            << "xray report non-deterministic: " << s.label();
    }
}

TEST(GoldenDeterminism, FreeRunSkipIsBitIdentical)
{
    // The sweep's free-run skip only matters under full-VM scanning
    // (VMM-exclusive); compare a hand-assembled system with the skip
    // on against one probing every descriptor.
    const core::Scenario s =
        goldenMatrix()[1]; // the VmmExclusive entry
    ASSERT_EQ(s.approach, core::Approach::VmmExclusive);
    const auto factory = workload::makeApp(s.app, s.scale);

    auto runWith = [&](bool skip) {
        core::HeteroSystem sys(s.host());
        vmm::HotnessConfig hotness;
        hotness.free_run_skip = skip;
        auto &slot = sys.addVm(
            std::make_unique<policy::VmmExclusivePolicy>(hotness),
            s.sizing());
        return sys.runOne(slot, factory);
    };
    EXPECT_EQ(fingerprint(runWith(true)), fingerprint(runWith(false)))
        << "free-run skip changed the simulated sweep";
}

} // namespace
