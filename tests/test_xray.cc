/**
 * @file
 * hos::xray: the placement-quality shadow must agree with ground
 * truth exactly. Each test pins one leg of the reconciliation:
 * per-page tier shadows are the exact complement partner of the
 * ResidencyIndex fast bits, the golden-matrix aggregates survive the
 * exhaustive check::auditXray walk, decision provenance carries the
 * engine's real inputs, the audit catches seeded corruption, and the
 * report round-trips through its JSON form byte-for-byte.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/auditors.hh"
#include "core/experiment.hh"
#include "guestos/residency.hh"
#include "xray/report.hh"
#include "xray/xray.hh"

#include "test_helpers.hh"

namespace {

using namespace hos;
using guestos::Gpfn;

/** Mirror of the golden-determinism matrix (one VM, three policies). */
std::vector<core::Scenario>
goldenMatrix()
{
    std::vector<core::Scenario> matrix;
    for (const core::Approach a :
         {core::Approach::HeteroLru, core::Approach::VmmExclusive,
          core::Approach::Coordinated}) {
        matrix.push_back(core::Scenario{}
                             .withApp(workload::AppId::GraphChi)
                             .withApproach(a)
                             .withScale(0.02)
                             .withCapacity(24 * mem::mib, 96 * mem::mib)
                             .withSeed(3));
    }
    return matrix;
}

/** Seed every already-allocated page into `rec` (HeteroSystem idiom). */
void
seedShadow(xray::Recorder &rec, guestos::GuestKernel &kernel)
{
    for (std::uint64_t pfn = 0; pfn < kernel.pages().size(); ++pfn) {
        if (!kernel.pages().page(pfn).allocated())
            continue;
        rec.onAlloc(0, pfn,
                    static_cast<std::uint8_t>(kernel.backingOf(pfn)),
                    kernel.events().now());
    }
}

TEST(Xray, ShadowIsComplementOfResidencyFastBits)
{
    // The ResidencyIndex tracks "is this binding FastMem-backed" per
    // region index; xray tracks "which tier is this gpfn in" per
    // page. Over the same pages the two views must be exact
    // complements: fastBit set iff the shadow tier is the fast tier,
    // and the region's fast fraction is one minus the misplaced
    // fraction with no rounding slack.
    if (!xray::xrayCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_XRAY=off)";
    auto kernel = test::standaloneGuest(16 * mem::mib, 64 * mem::mib);
    xray::Recorder rec;
    xray::XrayConfig cfg;
    cfg.full_provenance = true;
    rec.enable(cfg);
    seedShadow(rec, *kernel);
    xray::ScopedRecorder guard(&rec);

    auto &as = kernel->createProcess("p");
    const std::uint64_t n = 64;
    const std::uint64_t va =
        as.mmap(n * mem::pageSize, guestos::VmaKind::Anon,
                guestos::MemHint::SlowMem);
    const auto region =
        kernel->residency().registerRegion(as.pid(), va);
    std::vector<Gpfn> pfns;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Gpfn pfn = as.touch(va + i * mem::pageSize, true);
        pfns.push_back(pfn);
        kernel->residency().appendPage(region, pfn);
    }

    // Mixed placement: promote a third so both views have both kinds.
    std::vector<Gpfn> some(pfns.begin(), pfns.begin() + 21);
    ASSERT_EQ(kernel->migrator()
                  .migratePages(some, mem::MemType::FastMem)
                  .migrated,
              21u);

    auto &res = kernel->residency();
    std::uint64_t fast_bits = 0;
    std::uint64_t shadow_fast = 0;
    for (std::uint64_t i = 0; i < res.pageCount(region); ++i) {
        const Gpfn pfn = res.binding(region, i);
        const bool bit = res.fastBit(region, i);
        ASSERT_TRUE(rec.live(0, pfn)) << "gpfn " << pfn;
        EXPECT_EQ(bit, rec.shadowTier(0, pfn) == xray::fastTier)
            << "views disagree at region index " << i;
        fast_bits += bit ? 1 : 0;
        shadow_fast += rec.shadowTier(0, pfn) == xray::fastTier;
    }
    EXPECT_EQ(fast_bits, res.fastTotal(region));
    // Exact complement: fast + misplaced = every region page.
    EXPECT_EQ(res.fastTotal(region) + (n - shadow_fast), n);
    const double fast_frac =
        static_cast<double>(res.fastTotal(region)) /
        static_cast<double>(n);
    const double misplaced_frac =
        static_cast<double>(n - shadow_fast) / static_cast<double>(n);
    EXPECT_EQ(fast_frac, 1.0 - misplaced_frac);
}

TEST(Xray, GoldenMatrixReconcilesWithExhaustiveAudit)
{
    if (!xray::xrayCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_XRAY=off)";
    for (const core::Scenario &s : goldenMatrix()) {
        core::Scenario x = s;
        x.withXray();
        auto sys = core::systemFor(x);
        // runOne already enforces auditXray at the end; re-running it
        // here pins the bit-for-bit reconciliation explicitly and
        // counts the invariants evaluated.
        sys->runOne(sys->slot(0), workload::makeApp(x.app, x.scale));
        const auto audit =
            check::auditXray(sys->vmm(), sys->xrayRecorder());
        EXPECT_TRUE(audit.ok())
            << s.label() << ": "
            << (audit.failures.empty()
                    ? std::string()
                    : audit.failures.front().describe());
        EXPECT_GT(audit.checks, 0u) << s.label();

        // The derived quality metrics are pure complements of the
        // per-tier aggregates; the report must carry them unchanged.
        const xray::Recorder &rec = sys->xrayRecorder();
        const auto report = rec.report();
        ASSERT_FALSE(report.empty()) << s.label();
        for (const auto &vm : report.vms) {
            const auto id = vm.vm;
            std::uint64_t hot = 0;
            std::uint64_t hot_heat_nonfast = 0;
            for (std::size_t t = 0; t < xray::numTiers; ++t) {
                const auto tier = static_cast<std::uint8_t>(t);
                EXPECT_EQ(vm.tiers[t].pages, rec.pagesIn(id, tier));
                EXPECT_EQ(vm.tiers[t].hot_pages, rec.hotIn(id, tier));
                EXPECT_EQ(vm.tiers[t].heat_mass,
                          rec.heatMassIn(id, tier));
                EXPECT_EQ(vm.tiers[t].hot_heat_mass,
                          rec.hotHeatMassIn(id, tier));
                hot += rec.hotIn(id, tier);
                if (tier != xray::fastTier)
                    hot_heat_nonfast += rec.hotHeatMassIn(id, tier);
            }
            EXPECT_EQ(rec.hotTotal(id), hot);
            EXPECT_EQ(rec.hotMisplaced(id),
                      hot - rec.hotIn(id, xray::fastTier));
            EXPECT_EQ(rec.misplacedHeatMass(id), hot_heat_nonfast);
            EXPECT_EQ(vm.hotMisplaced(), rec.hotMisplaced(id));
            EXPECT_EQ(vm.misplacedHeatMass(),
                      rec.misplacedHeatMass(id));
        }
    }
}

TEST(Xray, ProvenanceCarriesEngineDecisionInputs)
{
    // VMM-exclusive drives both migrateBacking and the
    // promote-with-eviction exchange; with full provenance every page
    // rings. At least one promotion and one demotion must surface in
    // the exported rings with the engine's actual inputs: the EWMA
    // heat and threshold the decision saw, the candidate rank, and
    // the decision tick.
    // The golden matrix is sized for speed, too small for the scan
    // epochs to promote anything; shrink FastMem and run longer so
    // the engine actually exercises both directions.
    if (!xray::xrayCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_XRAY=off)";
    core::Scenario s = goldenMatrix()[1];
    ASSERT_EQ(s.approach, core::Approach::VmmExclusive);
    s.withScale(0.1).withSeed(1).withCapacity(
        static_cast<std::uint64_t>(0.1 * 8 * mem::gib * 0.25),
        static_cast<std::uint64_t>(0.1 * 8 * mem::gib));

    core::HeteroSystem sys(s.host());
    xray::XrayConfig cfg;
    cfg.full_provenance = true;
    cfg.export_pages = 4096;
    sys.enableXray(cfg);
    auto &slot = sys.addVm(core::makePolicy(s.approach), s.sizing());
    sys.runOne(slot, workload::makeApp(s.app, s.scale));

    const auto report = sys.xrayRecorder().report();
    ASSERT_EQ(report.vms.size(), 1u);
    const auto &vm = report.vms.front();
    ASSERT_GT(vm.count(xray::EventKind::Promote), 0u);
    ASSERT_GT(vm.count(xray::EventKind::Demote), 0u);

    std::uint64_t promotes = 0;
    std::uint64_t demotes = 0;
    for (const auto &page : vm.pages) {
        for (const auto &e : page.events) {
            if (e.kind == xray::EventKind::Promote) {
                ++promotes;
                EXPECT_GT(e.tick, 0u);
                EXPECT_EQ(e.threshold, vm.threshold);
                // The engine only promotes tracker-hot pages.
                EXPECT_GE(e.heat, e.threshold);
                EXPECT_EQ(e.tier_to, xray::fastTier);
                EXPECT_NE(e.tier_from, xray::fastTier);
            } else if (e.kind == xray::EventKind::Demote) {
                ++demotes;
                EXPECT_GT(e.tick, 0u);
                EXPECT_EQ(e.tier_from, xray::fastTier);
                EXPECT_NE(e.tier_to, xray::fastTier);
            }
        }
    }
    EXPECT_GT(promotes, 0u) << "no promotion ring survived export";
    EXPECT_GT(demotes, 0u) << "no demotion ring survived export";
}

TEST(Xray, AuditCatchesSeededCorruption)
{
    if (!xray::xrayCompiled)
        GTEST_SKIP() << "hooks compiled out (HOS_XRAY=off)";
    core::Scenario s = goldenMatrix()[1];
    s.withXray();
    auto sys = core::systemFor(s);
    sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));
    ASSERT_TRUE(
        check::auditXray(sys->vmm(), sys->xrayRecorder()).ok());

    // Flip one page's heat behind the recorder's back: the exhaustive
    // walk must pin it as a CheckKind::Xray failure.
    auto &kernel = *sys->slot(0).kernel;
    for (std::uint64_t pfn = 0; pfn < kernel.pages().size(); ++pfn) {
        if (!kernel.pages().page(pfn).allocated())
            continue;
        kernel.pageMeta(pfn).setHeat(kernel.pageMeta(pfn).heat() + 1);
        const auto audit =
            check::auditXray(sys->vmm(), sys->xrayRecorder());
        ASSERT_FALSE(audit.ok());
        EXPECT_EQ(audit.failures.front().kind, check::CheckKind::Xray);
        kernel.pageMeta(pfn).setHeat(kernel.pageMeta(pfn).heat() - 1);
        break;
    }
    EXPECT_TRUE(
        check::auditXray(sys->vmm(), sys->xrayRecorder()).ok());
}

TEST(Xray, ReportRoundTripsThroughJson)
{
    core::Scenario s = goldenMatrix()[2];
    s.withXray();
    auto sys = core::systemFor(s);
    sys->runOne(sys->slot(0), workload::makeApp(s.app, s.scale));

    const auto serialize = [](const xray::XrayReport &r) {
        std::ostringstream os;
        sim::JsonWriter w(os);
        xray::writeXrayReport(w, r);
        return os.str();
    };
    const std::string json = serialize(sys->xrayRecorder().report());
    ASSERT_TRUE(test::jsonWellFormed(json));

    std::string error;
    const auto doc = sim::jsonParse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto parsed = xray::xrayReportFromJson(*doc, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(serialize(parsed), json);
}

TEST(Xray, InactiveRecorderSeesNothing)
{
    // Without a ScopedRecorder install (and with no process-global
    // recorder enabled), the hooks must be dead: a full guest
    // lifecycle leaves a fresh recorder empty.
    xray::Recorder rec;
    {
        auto kernel = test::standaloneGuest(8 * mem::mib, 32 * mem::mib);
        auto &as = kernel->createProcess("p");
        const std::uint64_t va = as.mmap(
            64 * mem::pageSize, guestos::VmaKind::Anon,
            guestos::MemHint::SlowMem);
        for (std::uint64_t i = 0; i < 64; ++i)
            as.touch(va + i * mem::pageSize, true);
    }
    EXPECT_EQ(rec.numVms(), 0u);
    EXPECT_EQ(rec.report().vms.size(), 0u);
}

} // namespace
