/**
 * @file
 * Full-system integration: HeteroSystem assembly, frame conservation
 * across the whole stack, multi-VM lockstep runs with fairness
 * policies, and end-to-end policy orderings.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/report.hh"
#include "policy/vmm_exclusive.hh"
#include "vmm/drf.hh"
#include "vmm/max_min.hh"

namespace {

using namespace hos;

core::Scenario
smallScenario(core::Approach a)
{
    return core::Scenario{}
        .withApproach(a)
        .withCapacity(96 * mem::mib, 512 * mem::mib)
        .withScale(0.04);
}

TEST(SystemIntegration, FrameConservation)
{
    auto sys = core::systemFor(smallScenario(core::Approach::HeteroLru));
    auto &slot = sys->slot(0);
    sys->runOne(slot, workload::makeApp(workload::AppId::GraphChi, 0.04));

    // Machine frames: used + free == total, per tier.
    for (auto t : {mem::MemType::FastMem, mem::MemType::SlowMem}) {
        EXPECT_EQ(sys->vmm().usedFrames(t) + sys->vmm().freeFrames(t),
                  sys->vmm().totalFrames(t));
    }
    // The VM's P2M accounting matches the machine's owner accounting.
    auto &vm = sys->vmm().vm(slot.id);
    const auto owner = vm.owner();
    std::uint64_t owned = 0;
    for (unsigned n = 0; n < sys->machine().numNodes(); ++n)
        owned += sys->machine().node(n).framesOwnedBy(owner);
    EXPECT_EQ(owned, vm.p2m().populatedCount());
}

TEST(SystemIntegration, GuestPageAccountingHolds)
{
    auto sys = core::systemFor(smallScenario(core::Approach::HeteroLru));
    auto &slot = sys->slot(0);
    sys->runOne(slot, workload::makeApp(workload::AppId::LevelDb, 0.04));

    auto &k = *slot.kernel;
    for (unsigned nid = 0; nid < k.numNodes(); ++nid) {
        auto &node = k.node(nid);
        std::uint64_t allocated = 0;
        for (guestos::Gpfn pfn = node.base();
             pfn < node.base() + node.spanPages(); ++pfn) {
            if (k.pageMeta(pfn).allocated())
                ++allocated;
        }
        EXPECT_EQ(allocated + k.effectiveFreePages(node),
                  node.managedPages())
            << "node " << nid;
    }
}

TEST(SystemIntegration, PolicyOrderingEndToEnd)
{
    const auto slow =
        core::run(smallScenario(core::Approach::SlowMemOnly));
    const auto fast =
        core::run(smallScenario(core::Approach::FastMemOnly));
    const auto od =
        core::run(smallScenario(core::Approach::HeapIoSlabOd));

    EXPECT_LE(fast.elapsed, od.elapsed);
    EXPECT_LT(od.elapsed, slow.elapsed);
    EXPECT_GT(core::gainPercent(slow, od), 0.0);
}

TEST(SystemIntegration, MultiVmLockstepRunsBothToCompletion)
{
    core::HostConfig host;
    host.fast = mem::dramSpec(96 * mem::mib);
    host.slow = mem::defaultSlowMemSpec(512 * mem::mib);
    core::HeteroSystem sys(host);
    sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());

    core::GuestSizing sizing;
    sizing.fast_max = 96 * mem::mib;
    sizing.fast_initial = 32 * mem::mib;
    sizing.slow_max = 512 * mem::mib;
    sizing.slow_initial = 224 * mem::mib;
    auto &a = sys.addVm(core::makePolicy(core::Approach::HeteroLru),
                        sizing);
    sizing.seed = 9;
    auto &b = sys.addVm(core::makePolicy(core::Approach::HeteroLru),
                        sizing);

    auto results = sys.runMany(
        {{&a, workload::makeApp(workload::AppId::Redis, 0.04)},
         {&b, workload::makeApp(workload::AppId::LevelDb, 0.04)}});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].elapsed, 0u);
    EXPECT_GT(results[1].elapsed, 0u);
}

TEST(SystemIntegration, ContentionSlowsSharedRuns)
{
    auto solo_spec = smallScenario(core::Approach::HeteroLru)
                         .withApp(workload::AppId::Redis);
    const auto solo = core::run(solo_spec);

    core::HostConfig host = solo_spec.host();
    core::HeteroSystem sys(host);
    core::GuestSizing sizing;
    sizing.fast_initial = host.fast.capacity_bytes / 2;
    sizing.slow_initial = host.slow.capacity_bytes / 2;
    auto &a = sys.addVm(core::makePolicy(core::Approach::HeteroLru),
                        sizing);
    sizing.seed = 3;
    auto &b = sys.addVm(core::makePolicy(core::Approach::HeteroLru),
                        sizing);
    auto results = sys.runMany(
        {{&a, workload::makeApp(workload::AppId::Redis, 0.04)},
         {&b, workload::makeApp(workload::AppId::Redis, 0.04)}});
    EXPECT_GT(results[0].elapsed, solo.elapsed)
        << "shared LLC and devices must cost something";
}

TEST(SystemIntegration, OverheadAccountsArePopulated)
{
    auto spec = smallScenario(core::Approach::Coordinated);
    spec.scale = 0.12; // long enough for the 100 ms scan cadence
    auto sys = core::systemFor(spec);
    auto &slot = sys->slot(0);
    sys->runOne(slot, workload::makeApp(workload::AppId::GraphChi, 0.12));
    auto &k = *slot.kernel;
    EXPECT_GT(k.overheadTotal(guestos::OverheadKind::HotScan), 0u)
        << "the coordinated tracker charged scan costs";
    EXPECT_GT(k.overheadGrandTotal(), 0u);
}

TEST(SystemIntegration, VmmExclusiveMigratesDuringRun)
{
    auto spec = smallScenario(core::Approach::VmmExclusive);
    spec.scale = 0.15; // enough runtime for heat to build up
    auto sys = std::make_unique<core::HeteroSystem>(spec.host());
    auto policy = core::makePolicy(core::Approach::VmmExclusive);
    auto *raw =
        dynamic_cast<policy::VmmExclusivePolicy *>(policy.get());
    ASSERT_NE(raw, nullptr);
    auto &slot = sys->addVm(std::move(policy), core::GuestSizing{});
    sys->runOne(slot, workload::makeApp(workload::AppId::GraphChi, 0.15));
    EXPECT_GT(raw->pagesMigrated(), 0u);
    EXPECT_GT(raw->tracker()->totalScans(), 0u);
}

} // namespace
