/**
 * @file
 * SplitLru: two-touch promotion, second-chance reclaim, balancing,
 * and unevictable/under-IO rotation.
 */

#include <gtest/gtest.h>

#include "guestos/lru.hh"

namespace {

using namespace hos::guestos;

struct LruFixture : ::testing::Test
{
    PageArray pages{256};
    SplitLru lru{pages};

    LruFixture()
    {
        // Only live, LRU-managed pages may enter an LRU (hos::check
        // page-state validator); stand in for the allocator here.
        for (Gpfn p = 0; p < pages.size(); ++p) {
            pages.setAllocated(p, true);
            pages.page(p).setType(PageType::Anon);
        }
    }
};

TEST_F(LruFixture, NewPagesStartInactive)
{
    lru.addPage(1);
    EXPECT_EQ(lru.inactiveCount(), 1u);
    EXPECT_EQ(lru.activeCount(), 0u);
    EXPECT_EQ(pages.page(1).lru(), LruState::Inactive);
}

TEST_F(LruFixture, TwoTouchPromotion)
{
    lru.addPage(1);
    lru.touch(1); // sets referenced
    EXPECT_EQ(lru.activeCount(), 0u);
    lru.touch(1); // promotes
    EXPECT_EQ(lru.activeCount(), 1u);
    EXPECT_EQ(pages.page(1).lru(), LruState::Active);
}

TEST_F(LruFixture, ReclaimTakesColdTailFirst)
{
    for (Gpfn p = 1; p <= 5; ++p)
        lru.addPage(p);
    // Page 1 is oldest (tail). Reclaim one page:
    std::vector<Gpfn> taken;
    lru.scanInactive(1, [&](PageRef &pg) {
        taken.push_back(pg.pfn());
        return true;
    });
    ASSERT_EQ(taken.size(), 1u);
    EXPECT_EQ(taken[0], 1u);
    EXPECT_EQ(pages.page(1).lru(), LruState::None);
}

TEST_F(LruFixture, ReferencedPagesGetSecondChance)
{
    lru.addPage(1);
    lru.addPage(2);
    lru.touch(1); // referenced (tail page)
    std::vector<Gpfn> taken;
    lru.scanInactive(2, [&](PageRef &pg) {
        taken.push_back(pg.pfn());
        return true;
    });
    // Page 1 was referenced: promoted to active instead of reclaimed.
    ASSERT_EQ(taken.size(), 1u);
    EXPECT_EQ(taken[0], 2u);
    EXPECT_EQ(pages.page(1).lru(), LruState::Active);
}

TEST_F(LruFixture, DeclinedPagesRotateBack)
{
    lru.addPage(1);
    const auto got = lru.scanInactive(1, [](PageRef &) { return false; });
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(lru.inactiveCount(), 1u);
    EXPECT_EQ(pages.page(1).lru(), LruState::Inactive);
}

TEST_F(LruFixture, UnderIoAndUnevictableAreSkipped)
{
    lru.addPage(1);
    lru.addPage(2);
    pages.page(1).setUnderIo(true);
    pages.page(2).setUnevictable(true);
    const auto got = lru.scanInactive(4, [](PageRef &) { return true; });
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(lru.inactiveCount(), 2u);
}

TEST_F(LruFixture, BalanceDemotesActiveTail)
{
    for (Gpfn p = 1; p <= 10; ++p)
        lru.addPageActive(p);
    EXPECT_EQ(lru.inactiveCount(), 0u);
    const auto demoted = lru.balance(0.5, 100);
    EXPECT_EQ(demoted, 5u);
    EXPECT_EQ(lru.inactiveCount(), 5u);
}

TEST_F(LruFixture, BalanceRespectsReferenced)
{
    for (Gpfn p = 1; p <= 4; ++p)
        lru.addPageActive(p);
    for (Gpfn p = 1; p <= 4; ++p)
        lru.touch(p); // all referenced
    const auto demoted = lru.balance(0.5, 4);
    EXPECT_EQ(demoted, 0u); // one full pass only clears bits
    EXPECT_EQ(lru.balance(0.5, 4), 2u); // second pass demotes
}

TEST_F(LruFixture, RemoveFromEitherList)
{
    lru.addPage(1);
    lru.addPageActive(2);
    lru.removePage(1);
    lru.removePage(2);
    EXPECT_EQ(lru.totalCount(), 0u);
    EXPECT_EQ(pages.page(1).lru(), LruState::None);
    EXPECT_EQ(pages.page(2).lru(), LruState::None);
}

TEST_F(LruFixture, DeactivateMovesToInactive)
{
    lru.addPageActive(1);
    lru.deactivate(1);
    EXPECT_EQ(lru.inactiveCount(), 1u);
    lru.deactivate(1); // idempotent on inactive pages
    EXPECT_EQ(lru.inactiveCount(), 1u);
}

} // namespace
