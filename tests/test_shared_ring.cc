/**
 * @file
 * SharedRing: directive versioning, hot-page queueing, and the
 * exception predicate plumbing.
 */

#include <gtest/gtest.h>

#include "vmm/shared_ring.hh"

namespace {

using namespace hos;
using vmm::SharedRing;
using vmm::TrackingDirectives;

TEST(SharedRing, StartsEmpty)
{
    SharedRing ring;
    EXPECT_FALSE(ring.hasDirectives());
    EXPECT_EQ(ring.pendingHotPages(), 0u);
    EXPECT_TRUE(ring.drainHotPages().empty());
}

TEST(SharedRing, PublishBumpsVersion)
{
    SharedRing ring;
    TrackingDirectives d;
    d.ranges.push_back({0, 0x1000, 0x2000});
    ring.publishDirectives(std::move(d));
    EXPECT_TRUE(ring.hasDirectives());
    EXPECT_EQ(ring.directives().version, 1u);

    TrackingDirectives d2;
    ring.publishDirectives(std::move(d2));
    EXPECT_EQ(ring.directives().version, 2u);
    EXPECT_TRUE(ring.directives().ranges.empty())
        << "publish replaces, not merges";
}

TEST(SharedRing, HotPagesAccumulateAndDrain)
{
    SharedRing ring;
    ring.pushHotPages({1, 2, 3});
    ring.pushHotPages({4});
    EXPECT_EQ(ring.pendingHotPages(), 4u);
    auto drained = ring.drainHotPages();
    EXPECT_EQ(drained, (std::vector<guestos::Gpfn>{1, 2, 3, 4}));
    EXPECT_EQ(ring.pendingHotPages(), 0u);
}

TEST(SharedRing, ExceptionPredicateTravels)
{
    SharedRing ring;
    TrackingDirectives d;
    d.exception = [](const guestos::PageRef &p) {
        return p.type() == guestos::PageType::PageCache;
    };
    ring.publishDirectives(std::move(d));

    guestos::PageArray pa(2);
    guestos::PageRef cache_page = pa.page(0);
    cache_page.setType(guestos::PageType::PageCache);
    guestos::PageRef anon_page = pa.page(1);
    anon_page.setType(guestos::PageType::Anon);
    ASSERT_TRUE(static_cast<bool>(ring.directives().exception));
    EXPECT_TRUE(ring.directives().exception(cache_page));
    EXPECT_FALSE(ring.directives().exception(anon_page));
}

} // namespace
