/**
 * @file
 * BlockDevice, SwapDevice, and TlbModel: cost-model sanity.
 */

#include <gtest/gtest.h>

#include "guestos/blockdev.hh"
#include "mem/mem_spec.hh"
#include "guestos/swap.hh"
#include "mem/tlb_model.hh"

namespace {

using namespace hos;
using namespace hos::guestos;

TEST(BlockDevice, SequentialBeatsRandom)
{
    BlockDevice dev;
    const auto seq = dev.read(mem::mib, true);
    const auto rnd = dev.read(mem::mib, false);
    EXPECT_LT(seq, rnd);
}

TEST(BlockDevice, LatencyFloorsSmallRequests)
{
    BlockDevice dev;
    const auto tiny = dev.read(512, true);
    EXPECT_GE(tiny, sim::microseconds(
                        static_cast<std::uint64_t>(
                            dev.config().io_latency_us)));
}

TEST(BlockDevice, TimeScalesWithBytes)
{
    BlockDevice dev;
    const auto one = dev.read(mem::mib, true);
    const auto ten = dev.read(10 * mem::mib, true);
    EXPECT_GT(ten, 5 * one - sim::microseconds(800));
}

TEST(BlockDevice, StatsAccumulate)
{
    BlockDevice dev;
    dev.read(1000, true);
    dev.write(500, false);
    EXPECT_EQ(dev.bytesRead(), 1000u);
    EXPECT_EQ(dev.bytesWritten(), 500u);
    EXPECT_EQ(dev.requests(), 2u);
    dev.resetStats();
    EXPECT_EQ(dev.requests(), 0u);
}

TEST(SwapDevice, TracksUsage)
{
    BlockDevice disk;
    SwapDevice swap(disk, 1000);
    EXPECT_EQ(swap.freePages(), 1000u);
    const auto t = swap.swapOut(100);
    EXPECT_GT(t, 0u);
    EXPECT_EQ(swap.usedPages(), 100u);
    swap.swapIn(40);
    EXPECT_EQ(swap.usedPages(), 60u);
    EXPECT_EQ(swap.totalSwappedOut(), 100u);
    EXPECT_EQ(swap.totalSwappedIn(), 40u);
}

TEST(SwapDevice, OverflowPanics)
{
    BlockDevice disk;
    SwapDevice swap(disk, 10);
    swap.swapOut(10);
    EXPECT_DEATH(swap.swapOut(1), "exhausted");
}

TEST(TlbModel, ScanFlushChargesRefills)
{
    mem::TlbModel tlb({});
    const auto small = tlb.scanFlushCost(100, 10);
    const auto large = tlb.scanFlushCost(100000, 100000);
    EXPECT_LT(small, large);
    EXPECT_EQ(tlb.flushes(), 2u);
    // Refills are bounded by TLB reach.
    EXPECT_LE(tlb.refills(), 100000u);
}

TEST(TlbModel, ShootdownScalesWithPagesAndCpus)
{
    mem::TlbConfig one_cpu{1536, 800.0, 80.0, 1};
    mem::TlbConfig many_cpu{1536, 800.0, 80.0, 16};
    mem::TlbModel a(one_cpu), b(many_cpu);
    EXPECT_LT(a.shootdownCost(1000), b.shootdownCost(1000));
    EXPECT_LT(b.shootdownCost(10), b.shootdownCost(1000));
}

} // namespace
