/**
 * @file
 * CacheModel: hit-ratio properties (bounds, monotonicity in WSS,
 * temporal locality, cache size) and MPKI accounting.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"

namespace {

using namespace hos::mem;

CacheModel
model(std::uint64_t size = 16 * mib)
{
    return CacheModel(CacheConfig{size, 16});
}

TEST(CacheModel, FitsEntirelyMeansHighHitRatio)
{
    auto m = model();
    RegionLocality r{4 * mib, 0.0};
    EXPECT_GT(m.hitRatio(r), 0.95);
}

TEST(CacheModel, HitRatioBounded)
{
    auto m = model();
    for (std::uint64_t wss : {std::uint64_t(1) * mib, 100 * mib,
                              std::uint64_t(4) * gib}) {
        for (double t : {0.0, 0.3, 0.9}) {
            const double h = m.hitRatio(RegionLocality{wss, t});
            EXPECT_GE(h, 0.0);
            EXPECT_LE(h, 1.0);
        }
    }
}

TEST(CacheModel, LargerWssMissesMore)
{
    auto m = model();
    const double small = m.hitRatio(RegionLocality{32 * mib, 0.2});
    const double large = m.hitRatio(RegionLocality{512 * mib, 0.2});
    EXPECT_GT(small, large);
}

TEST(CacheModel, TemporalLocalityFloorsHitRatio)
{
    auto m = model();
    RegionLocality r{std::uint64_t(8) * gib, 0.6};
    EXPECT_GE(m.hitRatio(r), 0.6);
}

TEST(CacheModel, BiggerCacheHitsMore)
{
    auto m16 = model(16 * mib);
    auto m48 = model(48 * mib);
    RegionLocality r{96 * mib, 0.1};
    EXPECT_GT(m48.hitRatio(r), m16.hitRatio(r));
}

TEST(CacheModel, EmptyRegionAlwaysHits)
{
    auto m = model();
    EXPECT_DOUBLE_EQ(m.hitRatio(RegionLocality{0, 0.0}), 1.0);
}

TEST(CacheModel, AccessAccumulatesAndComputesMpki)
{
    auto m = model();
    RegionLocality r{std::uint64_t(1) * gib, 0.0};
    const auto misses = m.access(r, 1'000'000);
    EXPECT_GT(misses, 900'000u); // tiny coverage -> nearly all miss
    EXPECT_EQ(m.totalAccesses(), 1'000'000u);
    EXPECT_EQ(m.totalMisses(), misses);
    // 1e6 misses-ish over 100e6 instructions ~ 10 MPKI.
    EXPECT_NEAR(m.mpki(100'000'000), 10.0, 1.5);
    m.resetStats();
    EXPECT_EQ(m.totalMisses(), 0u);
}

TEST(CacheModel, ClaimRestrictsEffectiveCapacity)
{
    auto m = model(48 * mib);
    RegionLocality r{40 * mib, 0.0};
    const double full = m.hitRatio(r);
    const double slice = m.hitRatio(r, 8 * mib);
    EXPECT_GT(full, slice);
}

/** Property: hit ratio is monotonically non-increasing in WSS. */
class WssSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(WssSweep, MonotoneInWss)
{
    const double temporal = GetParam();
    auto m = model();
    double prev = 1.0;
    for (std::uint64_t wss = mib; wss <= 8 * gib; wss *= 2) {
        const double h = m.hitRatio(RegionLocality{wss, temporal});
        EXPECT_LE(h, prev + 1e-12) << "wss " << wss;
        prev = h;
    }
}

INSTANTIATE_TEST_SUITE_P(TemporalGrid, WssSweep,
                         ::testing::Values(0.0, 0.15, 0.35, 0.6, 0.9));

} // namespace
