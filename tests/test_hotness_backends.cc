/**
 * @file
 * Pluggable hotness backends: region-tracker invariants (bounded
 * count, full coverage, no overlap), the flat-cost sampling property,
 * split/merge adaptation, backend selection through the Scenario
 * hotness spec (JSON round-trip, deprecated loose keys, sweep axes),
 * and region-backend determinism.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "vmm/hotness_pte.hh"
#include "vmm/hotness_region.hh"
#include "vmm/vmm.hh"

namespace {

using namespace hos;

/** A guest + VMM pair sized by the SlowMem capacity. */
struct BackendFixture
{
    mem::MachineMemory machine;
    std::unique_ptr<vmm::Vmm> hypervisor;
    std::unique_ptr<guestos::GuestKernel> guest;
    vmm::VmId id = 0;

    explicit BackendFixture(std::uint64_t slow_bytes = 32 * mem::mib)
    {
        machine.addNode(mem::MemType::FastMem,
                        mem::dramSpec(8 * mem::mib));
        machine.addNode(mem::MemType::SlowMem,
                        mem::defaultSlowMemSpec(slow_bytes));
        hypervisor = std::make_unique<vmm::Vmm>(machine);

        guestos::GuestConfig cfg;
        cfg.name = "guest";
        cfg.cpus = 2;
        cfg.nodes = {{mem::MemType::FastMem, 8 * mem::mib, 8 * mem::mib},
                     {mem::MemType::SlowMem, slow_bytes, slow_bytes}};
        guest = std::make_unique<guestos::GuestKernel>(cfg);
        id = hypervisor->registerVm(*guest, {});
    }

    vmm::VmContext &vm() { return hypervisor->vm(id); }

    std::vector<guestos::Gpfn>
    allocPages(std::uint64_t n)
    {
        auto &as = guest->createProcess("p");
        const auto va = as.mmap(n * mem::pageSize, guestos::VmaKind::Anon,
                                guestos::MemHint::SlowMem);
        std::vector<guestos::Gpfn> out;
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(as.touch(va + i * mem::pageSize, true));
        return out;
    }
};

/** Full-VM regions must tile the gpfn space exactly, within bounds. */
void
expectTilesFullVm(const vmm::RegionTracker &tracker, std::uint64_t span,
                  const vmm::HotnessConfig &cfg)
{
    const auto &rs = tracker.regions();
    ASSERT_FALSE(rs.empty());
    EXPECT_LE(rs.size(), cfg.region_max);
    EXPECT_EQ(rs.front().lo, 0u);
    EXPECT_EQ(rs.back().hi, span);
    for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_LT(rs[i].lo, rs[i].hi) << "empty region " << i;
        if (i > 0) {
            EXPECT_EQ(rs[i].lo, rs[i - 1].hi)
                << "gap or overlap before region " << i;
        }
    }
}

TEST(RegionTracker, TilesCoverTheVmWithinBounds)
{
    BackendFixture f;
    f.allocPages(2048);
    vmm::HotnessConfig cfg;
    cfg.backend = vmm::HotnessBackend::Region;
    vmm::RegionTracker tracker(f.vm(), cfg);

    const std::uint64_t span = f.guest->pages().size();
    for (int round = 0; round < 8; ++round) {
        tracker.scanOnce();
        expectTilesFullVm(tracker, span, cfg);
        EXPECT_GE(tracker.regions().size(), cfg.region_min);
    }
}

TEST(RegionTracker, SplitsWhereAccessPatternsDisagree)
{
    BackendFixture f;
    auto pages = f.allocPages(2048);
    vmm::HotnessConfig cfg;
    cfg.backend = vmm::HotnessBackend::Region;
    vmm::RegionTracker tracker(f.vm(), cfg);

    // First kilopage hot every scan, the rest cold: regions
    // straddling the boundary accumulate disagreeing half evidence.
    std::uint64_t splits = 0;
    for (int round = 0; round < 12; ++round) {
        for (std::uint64_t i = 0; i < 1024; ++i)
            f.guest->pageMeta(pages[i]).setPteAccessed(true);
        auto res = tracker.scanOnce();
        splits += res.splits;
        expectTilesFullVm(tracker, f.guest->pages().size(), cfg);
    }
    EXPECT_GT(splits, 0u) << "hot/cold boundary never split a region";
}

TEST(RegionTracker, MergesWhenPatternsAgreeAgain)
{
    BackendFixture f;
    auto pages = f.allocPages(2048);
    vmm::HotnessConfig cfg;
    cfg.backend = vmm::HotnessBackend::Region;
    vmm::RegionTracker tracker(f.vm(), cfg);

    for (int round = 0; round < 12; ++round) {
        for (std::uint64_t i = 0; i < 1024; ++i)
            f.guest->pageMeta(pages[i]).setPteAccessed(true);
        tracker.scanOnce();
    }
    const std::size_t grown = tracker.regions().size();

    // Everything cold now: heats converge to 0 and neighbors merge
    // back toward the floor.
    std::uint64_t merges = 0;
    for (int round = 0; round < 20; ++round) {
        auto res = tracker.scanOnce();
        merges += res.merges;
        expectTilesFullVm(tracker, f.guest->pages().size(), cfg);
    }
    if (grown > cfg.region_min)
        EXPECT_GT(merges, 0u) << "agreeing neighbors never re-merged";
    EXPECT_LE(tracker.regions().size(), grown);
}

TEST(RegionTracker, ScanCostIsFlatAcrossFootprints)
{
    // The whole point of the backend: a 16x larger guest must not
    // cost more to scan. Probe volume is regions * region_probes,
    // bounded by configuration alone.
    BackendFixture small(32 * mem::mib);
    BackendFixture large(512 * mem::mib);
    small.allocPages(1024);
    large.allocPages(16 * 1024);

    vmm::HotnessConfig cfg;
    cfg.backend = vmm::HotnessBackend::Region;
    vmm::RegionTracker ts(small.vm(), cfg);
    vmm::RegionTracker tl(large.vm(), cfg);

    const std::uint64_t probe_cap =
        static_cast<std::uint64_t>(cfg.region_max) * cfg.region_probes;
    for (int round = 0; round < 6; ++round) {
        const auto rs = ts.scanOnce();
        const auto rl = tl.scanOnce();
        EXPECT_EQ(rs.pages_scanned,
                  rs.regions * cfg.region_probes);
        EXPECT_EQ(rl.pages_scanned,
                  rl.regions * cfg.region_probes);
        EXPECT_LE(rs.pages_scanned, probe_cap);
        EXPECT_LE(rl.pages_scanned, probe_cap);
    }

    // Contrast: the per-PTE scanner's work grows with the footprint.
    vmm::HotnessConfig pte;
    pte.pages_per_scan = 1'000'000;
    vmm::PteScanTracker ps(small.vm(), pte);
    vmm::PteScanTracker pl(large.vm(), pte);
    EXPECT_GT(pl.scanOnce().pages_scanned,
              ps.scanOnce().pages_scanned);
}

TEST(RegionTracker, GuidedRegionsSurviveDirectiveRepublish)
{
    BackendFixture f;
    auto pages = f.allocPages(2048);

    vmm::SharedRing ring;
    auto publish = [&] {
        vmm::TrackingDirectives d;
        f.guest->process(0).forEachVma([&](const guestos::Vma &vma) {
            d.ranges.push_back({0, vma.start, vma.end()});
        });
        ring.publishDirectives(std::move(d));
    };
    publish();

    vmm::HotnessConfig cfg;
    cfg.backend = vmm::HotnessBackend::Region;
    cfg.region_min_pages = 32;
    vmm::RegionTracker tracker(f.vm(), cfg);
    tracker.guideWith(&ring);

    // Build up split structure under a skewed pattern.
    for (int round = 0; round < 12; ++round) {
        for (std::uint64_t i = 0; i < 512; ++i)
            f.guest->pageMeta(pages[i]).setPteAccessed(true);
        tracker.scanOnce();
    }
    auto boundaries = [&] {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> b;
        for (const auto &r : tracker.regions())
            b.emplace_back(r.lo, r.hi);
        return b;
    };
    const auto before = boundaries();

    // The coordinated policy republishes identical directives every
    // 200ms; the version bumps but the learned regions must survive.
    publish();
    for (std::uint64_t i = 0; i < 512; ++i)
        f.guest->pageMeta(pages[i]).setPteAccessed(true);
    auto res = tracker.scanOnce();
    EXPECT_EQ(res.splits + res.merges, 0u)
        << "republish wiped adaptation state";
    EXPECT_EQ(boundaries(), before);
}

TEST(RegionTracker, EmitsHotRegionPagesWithinBudget)
{
    BackendFixture f;
    auto pages = f.allocPages(1024);
    vmm::HotnessConfig cfg;
    cfg.backend = vmm::HotnessBackend::Region;
    vmm::RegionTracker tracker(f.vm(), cfg);

    std::uint64_t emitted = 0;
    const std::uint64_t budget = cfg.promoteBudget(tracker.interval());
    for (int round = 0; round < 10; ++round) {
        for (auto pfn : pages)
            f.guest->pageMeta(pfn).setPteAccessed(true);
        auto res = tracker.scanOnce();
        EXPECT_LE(res.hot.size(), budget);
        for (auto pfn : res.hot) {
            const auto p = f.guest->pageMeta(pfn);
            EXPECT_TRUE(p.allocated());
            EXPECT_GE(p.heat(), cfg.hot_threshold);
        }
        emitted += res.hot.size();
    }
    EXPECT_GT(emitted, 0u) << "uniformly hot VM produced no candidates";
}

TEST(HotnessSpec, FactorySelectsBackends)
{
    BackendFixture f;
    vmm::HotnessConfig cfg;
    EXPECT_STREQ(vmm::makeHotnessTracker(f.vm(), cfg)->backendName(),
                 "pte_scan");
    cfg.backend = vmm::HotnessBackend::Region;
    EXPECT_STREQ(vmm::makeHotnessTracker(f.vm(), cfg)->backendName(),
                 "region");
}

TEST(HotnessSpec, AppliesOverBaseConfig)
{
    core::HotnessSpec spec;
    spec.backend = "region";
    spec.interval_ms = 50.0;
    spec.region_probes = 16;

    vmm::HotnessConfig base;
    base.pages_per_scan = 8192;
    base.per_pte_ns = 350.0;
    const auto cfg = spec.apply(base);
    EXPECT_EQ(cfg.backend, vmm::HotnessBackend::Region);
    EXPECT_EQ(cfg.interval, sim::milliseconds(50));
    EXPECT_EQ(cfg.region_probes, 16u);
    // Unset fields keep the approach's base tuning.
    EXPECT_EQ(cfg.pages_per_scan, 8192u);
    EXPECT_DOUBLE_EQ(cfg.per_pte_ns, 350.0);
}

TEST(HotnessSpec, ScenarioJsonRoundTrip)
{
    core::HotnessSpec spec;
    spec.backend = "region";
    spec.interval_ms = 50.0;
    spec.hot_threshold = 80;
    spec.region_max = 128;
    spec.region_split_threshold = 0.5;
    spec.legacy_placement_sampling = true;
    const core::Scenario s = core::Scenario{}.withHotness(spec);

    const std::string json = core::scenarioToJson(s);
    const auto doc = sim::jsonParse(json);
    ASSERT_TRUE(doc.has_value());
    std::string err;
    const auto parsed = core::scenarioFromJson(*doc, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->hotness.backend, "region");
    ASSERT_TRUE(parsed->hotness.interval_ms.has_value());
    EXPECT_DOUBLE_EQ(*parsed->hotness.interval_ms, 50.0);
    EXPECT_EQ(parsed->hotness.hot_threshold, 80u);
    EXPECT_EQ(parsed->hotness.region_max, 128u);
    ASSERT_TRUE(parsed->hotness.region_split_threshold.has_value());
    EXPECT_DOUBLE_EQ(*parsed->hotness.region_split_threshold, 0.5);
    EXPECT_TRUE(parsed->hotness.legacy_placement_sampling);
    // Unset knobs stay unset (so approach defaults still apply).
    EXPECT_FALSE(parsed->hotness.pages_per_scan.has_value());
    EXPECT_FALSE(parsed->hotness.adaptive.has_value());

    // A default spec is elided entirely.
    EXPECT_EQ(core::scenarioToJson(core::Scenario{}).find("hotness"),
              std::string::npos);
}

TEST(HotnessSpec, SweepAxisKeysAndDeprecatedShims)
{
    core::Scenario s;
    std::string err;
    EXPECT_TRUE(core::applyScenarioParam(s, "hotness.backend", "region",
                                         &err))
        << err;
    EXPECT_EQ(s.hotness.backend, "region");
    EXPECT_FALSE(
        core::applyScenarioParam(s, "hotness.backend", "hmm_v", &err));
    EXPECT_TRUE(core::applyScenarioParam(s, "hotness.region_probes",
                                         "32", &err));
    EXPECT_EQ(s.hotness.region_probes, 32u);
    EXPECT_FALSE(
        core::applyScenarioParam(s, "hotness.bogus", "1", &err));

    // Deprecated loose keys still parse, into the structured spec.
    // This block deliberately exercises the compatibility shims.
    core::Scenario old;
    EXPECT_TRUE(core::applyScenarioParam(
        // hos-analyze: loose-hotness-key (shim under test)
        old, "legacy_placement_sampling", "1", &err));
    EXPECT_TRUE(old.hotness.legacy_placement_sampling);
    // hos-analyze: loose-hotness-key (shim under test)
    EXPECT_TRUE(core::applyScenarioParam(old, "interval", "75", &err));
    ASSERT_TRUE(old.hotness.interval_ms.has_value());
    EXPECT_DOUBLE_EQ(*old.hotness.interval_ms, 75.0);
    EXPECT_TRUE(
        // hos-analyze: loose-hotness-key (shim under test)
        core::applyScenarioParam(old, "hot_threshold", "90", &err));
    EXPECT_EQ(old.hotness.hot_threshold, 90u);
    // hos-analyze: loose-hotness-key (shim under test)
    EXPECT_TRUE(core::applyScenarioParam(old, "adaptive", "true", &err));
    EXPECT_EQ(old.hotness.adaptive, true);

    // And the old top-level JSON shape still loads.
    const auto doc = sim::jsonParse(
        // hos-analyze: loose-hotness-key (old JSON shape under test)
        R"({"app": "graphchi", "legacy_placement_sampling": true})");
    ASSERT_TRUE(doc.has_value());
    const auto parsed = core::scenarioFromJson(*doc, &err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_TRUE(parsed->hotness.legacy_placement_sampling);
}

TEST(HotnessSpec, RegionBackendRunsDeterministically)
{
    const auto scenario = [] {
        return core::Scenario{}
            .withApp(workload::AppId::GraphChi)
            .withApproach(core::Approach::VmmExclusive)
            .withScale(0.02)
            .withCapacity(24 * mem::mib, 96 * mem::mib)
            .withSeed(3)
            .withHotnessBackend("region");
    };
    const auto a = core::run(scenario());
    const auto b = core::run(scenario());
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llc_misses, b.llc_misses);
    EXPECT_EQ(a.metric, b.metric);
}

} // namespace
